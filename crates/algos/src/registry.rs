//! The string-keyed algorithm registry: every [`PhaseAlgorithm`] family
//! reachable behind one uniform, type-erased interface.
//!
//! Bench binaries, CLIs, conformance suites and future service layers
//! dispatch any algorithm by name without knowing its input type: each
//! [`AlgorithmEntry`] pairs a deterministic instance generator (driven
//! by a [`CaseSpec`]) with the family's typed [`crate::api`]
//! implementation, and reports results as output digests (FNV-1a over
//! the canonical output encoding — order-sensitive, so outputs must be
//! deterministic) plus the unified [`ExecutionStats`].
//!
//! Two type-erased execution shapes:
//!
//! * [`AlgorithmEntry::run_case`] — one-shot: generate the instance,
//!   run `solve_seq` and `solve_par`, digest both.
//! * [`AlgorithmEntry::run_batch`] — prepare/query: generate the
//!   instance, `prepare` it **once**, then answer each query config via
//!   `solve_prepared` on a shared scratch workspace, digesting each
//!   against a fresh one-shot `solve_par` reference.
//!
//! ```
//! use phase_parallel::RunConfig;
//! use pp_algos::registry::{self, CaseSpec};
//!
//! for entry in registry::registry() {
//!     let outcome = entry.run_case(&CaseSpec::new(80, 3), &RunConfig::seeded(3));
//!     assert_eq!(outcome.expected_digest, outcome.observed_digest, "{}", entry.name());
//! }
//! ```

use crate::activity::{self, Activity};
use crate::api::*;
use crate::chain3d::Point3;
use crate::chain4d::Point4;
use crate::knapsack::Item;
use crate::matching;
use crate::whac::{Mole, Mole2d};
use phase_parallel::{ExecutionStats, PhaseAlgorithm, RunConfig, Scratch};
use pp_graph::{gen, Graph};
use pp_parlay::rng::Rng;

/// A deterministic test-case specification: instance size and
/// generation seed. The same spec always generates the same instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Nominal instance size (elements, vertices, or capacity units;
    /// size 0 produces the family's empty instance).
    pub size: usize,
    /// Seed for instance generation (independent of the run seed).
    pub seed: u64,
}

impl CaseSpec {
    pub fn new(size: usize, seed: u64) -> Self {
        Self { size, seed }
    }
}

/// The outcome of one registry case: digests of the reference and
/// tested executions (equal iff the outputs are identical) and the
/// tested run's statistics.
///
/// For [`AlgorithmEntry::run_case`] the reference is `solve_seq` and
/// the tested execution `solve_par`; for [`AlgorithmEntry::run_batch`]
/// the reference is a fresh one-shot `solve_par` and the tested
/// execution `solve_prepared` (one-shot-vs-sequential agreement is
/// already covered by `run_case`, and per-query knobs like
/// [`RunConfig::source`] are invisible to config-less `solve_seq`).
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// FNV-1a digest of the reference execution's output.
    pub expected_digest: u64,
    /// FNV-1a digest of the tested execution's output.
    pub observed_digest: u64,
    /// Unified statistics from the tested run.
    pub stats: ExecutionStats,
}

impl CaseOutcome {
    /// Did the tested execution reproduce the reference output?
    pub fn agrees(&self) -> bool {
        self.expected_digest == self.observed_digest
    }
}

/// Which engine family (paper section) an entry belongs to — useful for
/// grouping in benches and reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// §4 frontier extraction.
    Type1,
    /// §5 pivot wake-up (including TAS trees).
    Type2,
    /// §4.3 relaxed-rank SSSP family.
    RelaxedRank,
    /// Prior-work deterministic-reservation baselines.
    Reservations,
    /// Parallel but not phase-parallel (comparison baselines).
    Baseline,
}

/// One registered algorithm: a stable name, its engine class, and
/// type-erased one-shot and prepared-batch runners.
pub struct AlgorithmEntry {
    name: &'static str,
    engine: Engine,
    runner: fn(&CaseSpec, &RunConfig) -> CaseOutcome,
    batch_runner: fn(&CaseSpec, &[RunConfig], &RunConfig) -> Vec<CaseOutcome>,
}

impl AlgorithmEntry {
    /// The registry key (also the typed implementation's
    /// [`PhaseAlgorithm::name`]).
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Generate the instance for `case`, run both executions under
    /// `cfg`, and digest the outputs.
    pub fn run_case(&self, case: &CaseSpec, cfg: &RunConfig) -> CaseOutcome {
        (self.runner)(case, cfg)
    }

    /// Generate the instance for `case` once, `prepare` it once, and
    /// answer every query in `queries` via `solve_prepared` on a shared
    /// scratch workspace — each digested against a fresh one-shot
    /// `solve_par` under the same query config. `cfg` drives instance
    /// generation (e.g. the priority source) and the thread budget.
    pub fn run_batch(
        &self,
        case: &CaseSpec,
        queries: &[RunConfig],
        cfg: &RunConfig,
    ) -> Vec<CaseOutcome> {
        (self.batch_runner)(case, queries, cfg)
    }
}

/// Every registered algorithm. Names are stable; new families append.
pub fn registry() -> &'static [AlgorithmEntry] {
    macro_rules! entry {
        ($name:literal, $engine:ident, $algo:expr, $gen:expr) => {
            AlgorithmEntry {
                name: $name,
                engine: Engine::$engine,
                runner: |case, cfg| {
                    let input = $gen(case, cfg);
                    run_typed(&$algo, &input, cfg)
                },
                batch_runner: |case, queries, cfg| {
                    let input = $gen(case, cfg);
                    run_typed_batch(&$algo, &input, queries, cfg)
                },
            }
        };
    }
    static ENTRIES: &[AlgorithmEntry] = &[
        entry!("lis", Type2, Lis, gen_series),
        entry!("lis/weighted", Type2, WeightedLis, gen_weighted_series),
        entry!("activity/type1", Type1, ActivityType1, gen_activities),
        entry!(
            "activity/type1-pam",
            Type1,
            ActivityType1Pam,
            gen_activities
        ),
        entry!("activity/type2", Type2, ActivityType2, gen_activities),
        entry!(
            "activity/unweighted",
            Type2,
            UnweightedActivity,
            gen_activities
        ),
        entry!("knapsack", Type1, Knapsack, gen_knapsack),
        entry!("huffman", Type1, Huffman, gen_freqs),
        entry!("sssp/delta", RelaxedRank, DeltaSssp, gen_sssp),
        entry!("sssp/dijkstra", Baseline, DijkstraSssp, gen_sssp),
        entry!("sssp/rho", RelaxedRank, RhoSssp, gen_sssp),
        entry!("sssp/crauser", RelaxedRank, CrauserSssp, gen_sssp),
        entry!("sssp/pam", RelaxedRank, PamSssp, gen_sssp),
        entry!("sssp/bellman-ford", Baseline, BellmanFordSssp, gen_sssp),
        entry!("mis/tas", Type2, GreedyMis, gen_vertex_priorities),
        entry!("mis/rounds", Baseline, RoundsMis, gen_vertex_priorities),
        entry!("coloring", Type2, Coloring, gen_vertex_priorities),
        entry!("matching", Type2, Matching, gen_edge_priorities),
        entry!(
            "matching/reservations",
            Reservations,
            MatchingReservations,
            gen_edge_priorities
        ),
        entry!("whac", Type2, Whac, gen_moles),
        entry!("whac/2d", Type2, Whac2d, gen_moles_2d),
        entry!("chain3d", Type2, Chain3d, gen_points3),
        entry!("chain4d", Type2, Chain4d, gen_points4),
        entry!(
            "random-perm",
            Reservations,
            RandomPerm,
            |c: &CaseSpec, _: &RunConfig| (c.size, c.seed)
        ),
    ];
    ENTRIES
}

/// Look up an entry by its registry key.
pub fn lookup(name: &str) -> Option<&'static AlgorithmEntry> {
    registry().iter().find(|e| e.name == name)
}

/// All registry keys, in registration order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name).collect()
}

/// Run one typed algorithm on one instance (honoring the config's
/// thread budget) and digest both outputs.
fn run_typed<A>(algo: &A, input: &A::Input, cfg: &RunConfig) -> CaseOutcome
where
    A: PhaseAlgorithm + Sync,
    A::Input: Sync,
    A::Output: Digest + Send,
{
    let seq = algo.solve_seq(input);
    let report = cfg.install(|| algo.solve_par(input, cfg));
    CaseOutcome {
        expected_digest: seq.digest(),
        observed_digest: report.output.digest(),
        stats: report.stats,
    }
}

/// Prepare one typed instance once and run every query against it on a
/// shared scratch workspace, digesting each against a fresh one-shot
/// `solve_par` under the same query config.
fn run_typed_batch<A>(
    algo: &A,
    input: &A::Input,
    queries: &[RunConfig],
    cfg: &RunConfig,
) -> Vec<CaseOutcome>
where
    A: PhaseAlgorithm + Sync,
    A::Input: Sync,
    A::Output: Digest + Send,
{
    cfg.install(|| {
        let prepared = algo.prepare(input);
        let mut scratch = Scratch::new();
        queries
            .iter()
            .map(|query| {
                let one_shot = algo.solve_par(input, query);
                let report = algo.solve_prepared(&prepared, &mut scratch, query);
                CaseOutcome {
                    expected_digest: one_shot.output.digest(),
                    observed_digest: report.output.digest(),
                    stats: report.stats,
                }
            })
            .collect()
    })
}

/// FNV-1a output digest — enough to compare two executions' outputs
/// without holding both in a type-erased box.
pub trait Digest {
    fn digest(&self) -> u64;
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(h: u64, byte: u8) -> u64 {
    (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = fnv_step(h, b);
    }
    h
}

impl Digest for u32 {
    fn digest(&self) -> u64 {
        fnv_u64(FNV_OFFSET, u64::from(*self))
    }
}

impl Digest for u64 {
    fn digest(&self) -> u64 {
        fnv_u64(FNV_OFFSET, *self)
    }
}

impl Digest for Vec<u32> {
    fn digest(&self) -> u64 {
        self.iter()
            .fold(fnv_u64(FNV_OFFSET, self.len() as u64), |h, &v| {
                fnv_u64(h, u64::from(v))
            })
    }
}

impl Digest for Vec<u64> {
    fn digest(&self) -> u64 {
        self.iter()
            .fold(fnv_u64(FNV_OFFSET, self.len() as u64), |h, &v| {
                fnv_u64(h, v)
            })
    }
}

impl Digest for Vec<bool> {
    fn digest(&self) -> u64 {
        self.iter()
            .fold(fnv_u64(FNV_OFFSET, self.len() as u64), |h, &v| {
                fnv_u64(h, u64::from(v))
            })
    }
}

// ---- deterministic instance generators ----
//
// All driven by (case.size, case.seed) alone. Size 0 is the empty
// instance for sequence families; graph families floor at one vertex
// (an SSSP source must exist, and a 0-vertex graph has no instance to
// speak of).

fn gen_series(case: &CaseSpec, _cfg: &RunConfig) -> Vec<i64> {
    let mut r = Rng::new(case.seed ^ 0x5e71e5);
    (0..case.size)
        .map(|_| r.range(3 * case.size as u64 + 10) as i64 - case.size as i64)
        .collect()
}

fn gen_weighted_series(case: &CaseSpec, _cfg: &RunConfig) -> (Vec<i64>, Vec<u32>) {
    let mut r = Rng::new(case.seed ^ 0x3e16);
    let values = gen_series(case, _cfg);
    let weights = (0..case.size).map(|_| 1 + r.range(40) as u32).collect();
    (values, weights)
}

fn gen_activities(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Activity> {
    let mut r = Rng::new(case.seed ^ 0xac7);
    let span = 4 * case.size as u64 + 20;
    activity::sort_by_end(
        (0..case.size)
            .map(|_| {
                let s = r.range(span);
                Activity::new(s, s + 1 + r.range(span / 8 + 4), 1 + r.range(100))
            })
            .collect(),
    )
}

fn gen_knapsack(case: &CaseSpec, _cfg: &RunConfig) -> (Vec<Item>, u64) {
    let mut r = Rng::new(case.seed ^ 0x14a9);
    // Item count grows slowly; capacity tracks `size` so rank ≈ size / w*.
    let n_items = (case.size / 8).clamp(usize::from(case.size > 0), 40);
    let items = (0..n_items)
        .map(|_| Item::new(2 + r.range(30), r.range(500)))
        .collect();
    (items, case.size as u64)
}

fn gen_freqs(case: &CaseSpec, _cfg: &RunConfig) -> Vec<u64> {
    let mut r = Rng::new(case.seed ^ 0x1f);
    // Huffman needs at least one symbol.
    (0..case.size.max(1)).map(|_| 1 + r.range(1000)).collect()
}

fn gen_graph(case: &CaseSpec) -> Graph {
    let n = case.size.max(1);
    gen::uniform(n, 4 * n, case.seed ^ 0x9a4)
}

fn gen_sssp(case: &CaseSpec, _cfg: &RunConfig) -> SsspInstance {
    let g = gen_graph(case);
    let wg = gen::with_uniform_weights(&g, 1, 1000, case.seed ^ 0x55);
    SsspInstance::new(wg, 0)
}

fn gen_vertex_priorities(case: &CaseSpec, cfg: &RunConfig) -> GraphPriorityInstance {
    let g = gen_graph(case);
    // The priority_source knob picks the ordering heuristic; the
    // instance seed keeps generation independent of the run seed.
    let ordering_cfg =
        RunConfig::seeded(case.seed ^ 0x7a11).with_priority_source(cfg.priority_source);
    let pri = crate::coloring_orders::priorities_from_config(&g, &ordering_cfg);
    GraphPriorityInstance::new(g, pri)
}

fn gen_edge_priorities(case: &CaseSpec, _cfg: &RunConfig) -> GraphPriorityInstance {
    let g = gen_graph(case);
    let pri = matching::random_edge_priorities(&g, case.seed ^ 0xed6e);
    GraphPriorityInstance::new(g, pri)
}

fn gen_moles(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Mole> {
    let mut r = Rng::new(case.seed ^ 0x301e);
    (0..case.size)
        .map(|_| Mole {
            t: r.range(6 * case.size as u64 + 12) as i64,
            p: r.range(case.size as u64 + 6) as i64 - (case.size / 2) as i64,
        })
        .collect()
}

fn gen_moles_2d(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Mole2d> {
    let mut r = Rng::new(case.seed ^ 0x3d2);
    let side = (case.size as u64 / 4).max(4);
    (0..case.size)
        .map(|_| Mole2d {
            t: r.range(8 * case.size as u64 + 16) as i64,
            x: r.range(side) as i64 - (side / 2) as i64,
            y: r.range(side) as i64 - (side / 2) as i64,
        })
        .collect()
}

fn gen_points3(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Point3> {
    let mut r = Rng::new(case.seed ^ 0x9d3);
    let range = 2 * case.size as u64 + 8;
    (0..case.size)
        .map(|_| Point3 {
            a: r.range(range) as i64,
            b: r.range(range) as i64,
            c: r.range(range) as i64,
        })
        .collect()
}

fn gen_points4(case: &CaseSpec, _cfg: &RunConfig) -> Vec<Point4> {
    let mut r = Rng::new(case.seed ^ 0x9d4);
    let range = 2 * case.size as u64 + 8;
    (0..case.size)
        .map(|_| Point4 {
            a: r.range(range) as i64,
            b: r.range(range) as i64,
            c: r.range(range) as i64,
            d: r.range(range) as i64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_names() {
        assert!(lookup("lis").is_some());
        assert!(lookup("sssp/delta").is_some());
        assert!(lookup("nope").is_none());
        let names = names();
        assert!(names.len() >= 20);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "registry names must be unique");
    }

    #[test]
    fn entries_agree_on_a_small_case() {
        let case = CaseSpec::new(60, 5);
        let cfg = RunConfig::seeded(5);
        for entry in registry() {
            let outcome = entry.run_case(&case, &cfg);
            assert!(outcome.agrees(), "{} diverged", entry.name());
        }
    }

    #[test]
    fn batch_entries_agree_with_one_shot() {
        let case = CaseSpec::new(80, 9);
        let queries: Vec<RunConfig> = vec![
            RunConfig::seeded(1),
            RunConfig::seeded(2).with_delta(5),
            RunConfig::seeded(3).with_rho(4),
            RunConfig::seeded(4).with_source(7),
        ];
        for entry in registry() {
            let outcomes = entry.run_batch(&case, &queries, &RunConfig::seeded(9));
            assert_eq!(outcomes.len(), queries.len());
            for (i, o) in outcomes.iter().enumerate() {
                assert!(o.agrees(), "{} diverged on query {i}", entry.name());
            }
        }
    }

    #[test]
    fn digests_are_order_sensitive() {
        assert_ne!(vec![1u32, 2].digest(), vec![2u32, 1].digest());
        assert_ne!(vec![0u64].digest(), vec![0u64, 0].digest());
        assert_ne!(vec![true, false].digest(), vec![false, true].digest());
    }
}
