//! Longest chain under 3D dominance — the Appendix B extension
//! exercised end-to-end.
//!
//! Appendix B closes with: "When extending the setting to 2D grid ...
//! the problem requires a 3D range query, which adds up an extra
//! `O(log n)` factor to both work and span." This module runs the
//! phase-parallel Type 2 machinery one dimension up from LIS: given 3D
//! points, find the longest chain `p_1 ≺ p_2 ≺ …` under strict
//! coordinate-wise dominance (`a`, `b` and `c` all strictly increase).
//! LIS is the 2D special case (index, value); the 2D-grid Whac-A-Mole
//! region is this plus one more halfspace (its four rotated constraints
//! have one linear dependency — see `whac.rs` docs), so the 3D chain is
//! the exact shape of the range-query extension the appendix describes.
//!
//! `O(n log^4 n)` work and `O(k log^3 n)` span via
//! [`pp_ranges::RangeTree3d`] — one `log` above Algorithm 3 in each
//! bound, matching the appendix's claim.

use phase_parallel::{
    run_type2_cancellable, PivotMode, Report, RunConfig, Type2Problem, WakeResult,
};
use pp_parlay::rng::{hash64, Rng};
use pp_ranges::RangeTree3d;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A 3D point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point3 {
    /// First coordinate.
    pub a: i64,
    /// Second coordinate.
    pub b: i64,
    /// Third coordinate.
    pub c: i64,
}

/// Slot assignment for one coordinate: returns `(slot_of_point,
/// strict_prefix_bound_of_point)` — slots break ties by id, bounds count
/// strictly smaller values only.
pub(crate) fn slots(values: impl Fn(usize) -> i64 + Send + Sync, n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut order: Vec<u32> = (0..n as u32).collect();
    pp_parlay::par_sort_by_key(&mut order, |&i| (values(i as usize), i));
    let mut slot = vec![0u32; n];
    for (s, &i) in order.iter().enumerate() {
        slot[i as usize] = s as u32;
    }
    let sorted: Vec<i64> = order.iter().map(|&i| values(i as usize)).collect();
    let bound: Vec<u32> = (0..n)
        .into_par_iter()
        .map(|i| sorted.partition_point(|&v| v < values(i)) as u32)
        .collect();
    (slot, bound)
}

/// Longest strict-dominance chain, quadratic oracle (tests only).
pub fn chain3d_brute(pts: &[Point3]) -> u32 {
    let n = pts.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (pts[i].a, pts[i].b, pts[i].c));
    let mut dp = vec![0u32; n];
    let mut best = 0;
    for &i in &idx {
        dp[i] = 1;
        for j in 0..n {
            if pts[j].a < pts[i].a && pts[j].b < pts[i].b && pts[j].c < pts[i].c {
                dp[i] = dp[i].max(dp[j] + 1);
            }
        }
        best = best.max(dp[i]);
    }
    best
}

/// Longest strict-dominance chain, sequential `O(n log^2 n)`: process in
/// `a`-order, querying a 2D max structure over `(b, c)` — the natural
/// generalization of the classic LIS DP.
pub fn chain3d_seq(pts: &[Point3]) -> u32 {
    let n = pts.len();
    if n == 0 {
        return 0;
    }
    let (b_slot, b_bound) = slots(|i| pts[i].b, n);
    let (_, c_bound) = slots(|i| pts[i].c, n);
    let (c_slot, _) = slots(|i| pts[i].c, n);
    // 2D tree over (b-slot as x, c-slot as y): finishing in a-order makes
    // `max_dp` range over exactly the already-processed points.
    let y_of_x: Vec<u32> = {
        let mut y = vec![0u32; n];
        for i in 0..n {
            y[b_slot[i] as usize] = c_slot[i];
        }
        y
    };
    let mut tree = pp_ranges::RangeTree2d::new(&y_of_x, PivotMode::RightMost);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| (pts[i as usize].a, i));
    let mut best = 0;
    let mut i0 = 0;
    while i0 < n {
        // Points with equal `a` are mutually incomparable: process the
        // whole tie-group against the pre-group state.
        let mut i1 = i0;
        while i1 < n && pts[order[i1] as usize].a == pts[order[i0] as usize].a {
            i1 += 1;
        }
        let batch: Vec<(u32, u32)> = order[i0..i1]
            .iter()
            .map(|&i| {
                let info = tree.query_prefix(b_bound[i as usize], c_bound[i as usize]);
                let dp = info.max_dp.map_or(1, |d| d + 1);
                (b_slot[i as usize], dp)
            })
            .collect();
        for &(_, dp) in &batch {
            best = best.max(dp);
        }
        tree.finish_batch(&batch);
        i0 = i1;
    }
    best
}

/// Phase-parallel longest 3D dominance chain (Type 2 over a 3D range
/// tree). The report's `stats.rounds` equals the chain length
/// (round-efficiency, one rank per round).
pub fn chain3d_par(pts: &[Point3], cfg: &RunConfig) -> Report<u32> {
    let (mode, seed) = (cfg.pivot_mode, cfg.seed);
    let n = pts.len();
    if n == 0 {
        return Report::plain(0);
    }
    let (a_slot, a_bound) = slots(|i| pts[i].a, n);
    let (b_slot, b_bound) = slots(|i| pts[i].b, n);
    let (c_slot, c_bound) = slots(|i| pts[i].c, n);
    let tree = RangeTree3d::new(&a_slot, &b_slot, &c_slot, mode);

    struct Problem {
        tree: RangeTree3d,
        qa: Vec<u32>,
        qb: Vec<u32>,
        qc: Vec<u32>,
        dp: Vec<u32>,
        attempts: Vec<AtomicU32>,
        seed: u64,
        n: usize,
    }

    impl Problem {
        fn probe(&self, x: u32) -> WakeResult<u32> {
            let (qa, qb, qc) = (
                self.qa[x as usize],
                self.qb[x as usize],
                self.qc[x as usize],
            );
            let info = self.tree.query_prefix(qa, qb, qc);
            if info.unfinished == 0 {
                WakeResult::Ready(info.max_dp.map_or(1, |d| d + 1))
            } else {
                let attempt = self.attempts[x as usize].fetch_add(1, Ordering::Relaxed);
                let mut rng = Rng::new(hash64(self.seed, (attempt as u64) << 32 | x as u64));
                let pivot = self
                    .tree
                    .select_pivot(qa, qb, qc, &mut rng)
                    .expect("unfinished predecessor exists");
                WakeResult::Blocked { new_pivot: pivot }
            }
        }
    }

    impl Type2Problem for Problem {
        type Info = u32;
        type Output = (Vec<u32>, u32);

        fn initial_pivots(&self) -> Vec<(u32, u32)> {
            // No virtual point here: probe every object once up front;
            // blocked ones hang off their first pivot.
            (0..self.n as u32)
                .into_par_iter()
                .filter_map(|x| match self.probe(x) {
                    WakeResult::Ready(_) => None,
                    WakeResult::Blocked { new_pivot } => Some((new_pivot, x)),
                })
                .collect()
        }

        fn initial_frontier(&self) -> Vec<(u32, u32)> {
            (0..self.n as u32)
                .into_par_iter()
                .filter_map(|x| match self.probe(x) {
                    WakeResult::Ready(dp) => Some((x, dp)),
                    WakeResult::Blocked { .. } => None,
                })
                .collect()
        }

        fn try_wake(&self, x: u32) -> WakeResult<u32> {
            self.probe(x)
        }

        fn commit(&mut self, ready: &[(u32, u32)]) {
            for &(x, d) in ready {
                self.dp[x as usize] = d;
            }
            self.tree.finish_batch(ready);
        }

        fn finish(self) -> (Vec<u32>, u32) {
            let best = self.dp.iter().copied().max().unwrap_or(0);
            (self.dp, best)
        }
    }

    let ((_, best), stats, outcome) = run_type2_cancellable(
        Problem {
            tree,
            qa: a_bound,
            qb: b_bound,
            qc: c_bound,
            dp: vec![0; n],
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            seed,
            n,
        },
        cfg.cancel.as_ref(),
    );
    Report::new(best, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng as TRng;

    fn cfg(mode: PivotMode, seed: u64) -> RunConfig {
        RunConfig::seeded(seed).with_pivot_mode(mode)
    }

    fn random_points(n: usize, range: u64, seed: u64) -> Vec<Point3> {
        let mut r = TRng::new(seed);
        (0..n)
            .map(|_| Point3 {
                a: r.range(range) as i64,
                b: r.range(range) as i64,
                c: r.range(range) as i64,
            })
            .collect()
    }

    #[test]
    fn all_agree_small() {
        for seed in 0..15 {
            let pts = random_points(80, 30, seed);
            let want = chain3d_brute(&pts);
            assert_eq!(chain3d_seq(&pts), want, "seq seed={seed}");
            assert_eq!(
                chain3d_par(&pts, &cfg(PivotMode::Random, seed)).output,
                want,
                "par/random seed={seed}"
            );
            assert_eq!(
                chain3d_par(&pts, &cfg(PivotMode::RightMost, seed)).output,
                want,
                "par/rightmost seed={seed}"
            );
        }
    }

    #[test]
    fn agree_larger() {
        let pts = random_points(3000, 1000, 7);
        let want = chain3d_seq(&pts);
        let report = chain3d_par(&pts, &cfg(PivotMode::Random, 8));
        let (got, stats) = (report.output, &report.stats);
        assert_eq!(got, want);
        // Round-efficiency: exactly one round per rank.
        assert_eq!(stats.rounds as u32, want);
    }

    #[test]
    fn fully_dominating_chain() {
        let pts: Vec<Point3> = (0..200)
            .map(|i| Point3 {
                a: i,
                b: 2 * i,
                c: 3 * i,
            })
            .collect();
        assert_eq!(chain3d_seq(&pts), 200);
        let report = chain3d_par(&pts, &cfg(PivotMode::RightMost, 1));
        let (got, stats) = (report.output, &report.stats);
        assert_eq!(got, 200);
        assert_eq!(stats.rounds, 200);
    }

    #[test]
    fn antichain_is_one_round() {
        // All points share a coordinate: no dominations.
        let pts: Vec<Point3> = (0..100).map(|i| Point3 { a: 5, b: i, c: -i }).collect();
        assert_eq!(chain3d_seq(&pts), 1);
        let report = chain3d_par(&pts, &cfg(PivotMode::Random, 2));
        let (got, stats) = (report.output, &report.stats);
        assert_eq!(got, 1);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn duplicate_points_do_not_chain() {
        let pts = vec![
            Point3 { a: 1, b: 1, c: 1 },
            Point3 { a: 1, b: 1, c: 1 },
            Point3 { a: 2, b: 2, c: 2 },
        ];
        assert_eq!(chain3d_brute(&pts), 2);
        assert_eq!(chain3d_seq(&pts), 2);
        assert_eq!(chain3d_par(&pts, &cfg(PivotMode::Random, 3)).output, 2);
    }

    #[test]
    fn lis_as_degenerate_3d() {
        // LIS embeds as (index, value, value).
        let mut r = TRng::new(4);
        let vals: Vec<i64> = (0..500).map(|_| r.range(200) as i64).collect();
        let pts: Vec<Point3> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| Point3 {
                a: i as i64,
                b: v,
                c: v,
            })
            .collect();
        assert_eq!(chain3d_seq(&pts), crate::lis::lis_seq(&vals));
        assert_eq!(
            chain3d_par(&pts, &cfg(PivotMode::Random, 5)).output,
            crate::lis::lis_seq(&vals)
        );
    }

    #[test]
    fn empty() {
        assert_eq!(chain3d_seq(&[]), 0);
        assert_eq!(chain3d_par(&[], &cfg(PivotMode::Random, 0)).output, 0);
    }
}
