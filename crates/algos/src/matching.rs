//! Greedy maximal matching (§5.3).
//!
//! The greedy matching processes edges in (random) priority order and
//! matches an edge iff both endpoints are still free — again a
//! deterministic function of the priorities. The parallel version is
//! round-synchronous, as the paper prescribes ("the parallel
//! graph-matching algorithm cannot be fully asynchronous since each
//! edge's readiness relies on two vertices, which needs to be checked
//! after synchronization"): each round matches every live edge that is
//! the minimum-priority live edge at *both* endpoints — such edges are
//! mutually non-adjacent by construction — then discards edges with a
//! newly matched endpoint.

use phase_parallel::{
    deadline_tripped, CancelToken, ExecutionStats, Frontier, Report, RunOutcome, Scratch,
};
use pp_graph::Graph;
use pp_parlay::shuffle::random_permutation;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Undirected edge list of `g` (each edge once, `u < v`), in a canonical
/// order.
pub fn edge_list(g: &Graph) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity(g.num_edges() / 2);
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Sequential greedy maximal matching over edges in priority order.
/// `priority[e]` ranks edge `e` of [`edge_list`]; lower = earlier.
/// Returns a mask over the edge list.
pub fn matching_seq(g: &Graph, priority: &[u32]) -> Vec<bool> {
    let edges = edge_list(g);
    assert_eq!(priority.len(), edges.len());
    let mut order: Vec<u32> = (0..edges.len() as u32).collect();
    order.sort_unstable_by_key(|&e| priority[e as usize]);
    let mut vertex_matched = vec![false; g.num_vertices()];
    let mut in_matching = vec![false; edges.len()];
    for &e in &order {
        let (u, v) = edges[e as usize];
        if !vertex_matched[u as usize] && !vertex_matched[v as usize] {
            in_matching[e as usize] = true;
            vertex_matched[u as usize] = true;
            vertex_matched[v as usize] = true;
        }
    }
    in_matching
}

/// Round-synchronous parallel greedy matching. Same output as
/// [`matching_seq`]. The report's `stats.rounds` equals the greedy
/// dependence depth (`O(log n)` whp for random priorities by
/// Fischer–Noever), with per-round matched-edge counts in
/// `frontier_sizes`.
pub fn matching_par(g: &Graph, priority: &[u32]) -> Report<Vec<bool>> {
    matching_par_prepared(g, priority, &edge_list(g), &mut Scratch::new())
}

/// The query half of [`matching_par`]: run the rounds against a
/// prebuilt [`edge_list`] (the prepare step), drawing the per-query
/// endpoint tables, live set and round buffer from `scratch`. The live
/// edge set runs on the [`Frontier`] engine over edge indices (dense
/// bitmap while most edges are live, sparse list for the tail). Same
/// output as [`matching_par`] (and [`matching_seq`]).
pub fn matching_par_prepared(
    g: &Graph,
    priority: &[u32],
    edges: &[(u32, u32)],
    scratch: &mut Scratch,
) -> Report<Vec<bool>> {
    matching_par_prepared_cancellable(g, priority, edges, scratch, None)
}

/// [`matching_par_prepared`] under an optional deadline: the round loop
/// polls `cancel` at its top; a trip leaves the remaining live edges
/// unmatched under `RunOutcome::DeadlineExceeded` (the partial mask is
/// a valid — not maximal — matching).
pub fn matching_par_prepared_cancellable(
    g: &Graph,
    priority: &[u32],
    edges: &[(u32, u32)],
    scratch: &mut Scratch,
    cancel: Option<&CancelToken>,
) -> Report<Vec<bool>> {
    assert_eq!(priority.len(), edges.len());
    let n = g.num_vertices();
    let m = edges.len();
    let mut in_matching = vec![false; m];
    let mut vertex_matched = scratch.take_vec::<bool>("matching_vertex_matched");
    vertex_matched.resize(n, false);
    let mut live = Frontier::take(scratch, "matching_live_set");
    live.reset(m);
    live.fill_range(m);
    let mut ready = scratch.take_vec::<u32>("matching_ready");
    let mut stats = ExecutionStats::default();
    let mut outcome = RunOutcome::Completed;
    const NONE: u32 = u32::MAX;
    let mut min_pri = scratch.take_vec::<AtomicU32>("matching_min_pri");
    min_pri.resize_with(n, || AtomicU32::new(NONE));
    while !live.is_empty() {
        if deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        // Each endpoint learns its minimum live incident edge priority.
        {
            let min_pri = &min_pri;
            live.for_each(|e| {
                let (u, v) = edges[e as usize];
                let p = priority[e as usize];
                min_pri[u as usize].fetch_min(p, Ordering::Relaxed);
                min_pri[v as usize].fetch_min(p, Ordering::Relaxed);
            });
        }
        // Ready: locally minimum at both endpoints. Ready edges leave
        // the live set here (they are about to be matched, so the
        // matched-endpoint retain below would drop them anyway).
        ready.clear();
        {
            let min_pri = &min_pri;
            live.extract_retain(&mut ready, |e| {
                let (u, v) = edges[e as usize];
                let p = priority[e as usize];
                min_pri[u as usize].load(Ordering::Relaxed) == p
                    && min_pri[v as usize].load(Ordering::Relaxed) == p
            });
        }
        debug_assert!(!ready.is_empty(), "the global minimum edge is ready");
        stats.record_round(ready.len());
        for &e in &ready {
            let (u, v) = edges[e as usize];
            in_matching[e as usize] = true;
            vertex_matched[u as usize] = true;
            vertex_matched[v as usize] = true;
        }
        // Drop matched-endpoint edges; reset the touched min slots.
        {
            let min_pri = &min_pri;
            live.for_each(|e| {
                let (u, v) = edges[e as usize];
                min_pri[u as usize].store(NONE, Ordering::Relaxed);
                min_pri[v as usize].store(NONE, Ordering::Relaxed);
            });
        }
        {
            let vertex_matched = &vertex_matched;
            live.retain(|e| {
                let (u, v) = edges[e as usize];
                !vertex_matched[u as usize] && !vertex_matched[v as usize]
            });
        }
    }
    stats.set_counter("dense_substeps", live.dense_rounds());
    stats.set_counter("sparse_substeps", live.sparse_rounds());
    scratch.put_vec("matching_vertex_matched", vertex_matched);
    live.release(scratch, "matching_live_set");
    scratch.put_vec("matching_ready", ready);
    scratch.put_vec("matching_min_pri", min_pri);
    Report::new(in_matching, stats).with_outcome(outcome)
}

/// Greedy maximal matching via deterministic reservations (the paper's
/// prior-work framework \[10\]), as an ablation baseline for
/// [`matching_par`]. Same output as [`matching_seq`].
///
/// Each edge, in priority order, reserves both endpoints and commits iff
/// it wins both — the textbook speculative-for instance from \[10\]. The
/// framework re-examines every live edge each round, which is the
/// `O(D·m)` work pattern the SPAA 2022 paper removes; the report's
/// `"attempts"` counter exposes the re-examination factor
/// (`attempts / m`).
pub fn matching_reservations(g: &Graph, priority: &[u32]) -> Report<Vec<bool>> {
    let edges = edge_list(g);
    matching_reservations_prepared(g, priority, &edges, &priority_order(priority))
}

/// Edge indices sorted by priority — the iterate order of the
/// reservations baseline, a pure function of the priorities (the
/// prepare half of [`matching_reservations_prepared`]).
pub fn priority_order(priority: &[u32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..priority.len() as u32).collect();
    order.par_sort_unstable_by_key(|&e| priority[e as usize]);
    order
}

/// The query half of [`matching_reservations`]: speculative-for over a
/// prebuilt [`edge_list`] and [`priority_order`]. Same output as
/// [`matching_seq`].
pub fn matching_reservations_prepared(
    g: &Graph,
    priority: &[u32],
    edges: &[(u32, u32)],
    order: &[u32],
) -> Report<Vec<bool>> {
    matching_reservations_prepared_cancellable(g, priority, edges, order, None)
}

/// [`matching_reservations_prepared`] under an optional deadline: the
/// speculative-for round loop polls `cancel`; a trip abandons the
/// uncommitted iterates under `RunOutcome::DeadlineExceeded`.
pub fn matching_reservations_prepared_cancellable(
    g: &Graph,
    priority: &[u32],
    edges: &[(u32, u32)],
    order: &[u32],
    cancel: Option<&CancelToken>,
) -> Report<Vec<bool>> {
    use phase_parallel::{speculative_for_cancellable, ReservationProblem, ReservationTable};
    use std::sync::atomic::AtomicBool;

    assert_eq!(priority.len(), edges.len());
    assert_eq!(order.len(), edges.len());

    struct P<'a> {
        edges: &'a [(u32, u32)],
        order: &'a [u32],
        vertex_matched: Vec<AtomicBool>,
        in_matching: Vec<AtomicBool>,
    }
    impl ReservationProblem for P<'_> {
        fn num_iterates(&self) -> usize {
            self.order.len()
        }
        fn reserve(&self, i: u32, t: &ReservationTable) {
            let (u, v) = self.edges[self.order[i as usize] as usize];
            if !self.vertex_matched[u as usize].load(Ordering::Relaxed)
                && !self.vertex_matched[v as usize].load(Ordering::Relaxed)
            {
                t.reserve(u as usize, i);
                t.reserve(v as usize, i);
            }
        }
        fn commit(&self, i: u32, t: &ReservationTable) -> bool {
            let e = self.order[i as usize] as usize;
            let (u, v) = self.edges[e];
            if self.vertex_matched[u as usize].load(Ordering::Relaxed)
                || self.vertex_matched[v as usize].load(Ordering::Relaxed)
            {
                return true; // an earlier edge claimed an endpoint
            }
            if t.holds(u as usize, i) && t.holds(v as usize, i) {
                self.in_matching[e].store(true, Ordering::Relaxed);
                self.vertex_matched[u as usize].store(true, Ordering::Relaxed);
                self.vertex_matched[v as usize].store(true, Ordering::Relaxed);
                true
            } else {
                false
            }
        }
    }

    let p = P {
        edges,
        order,
        vertex_matched: (0..g.num_vertices())
            .map(|_| AtomicBool::new(false))
            .collect(),
        in_matching: (0..edges.len()).map(|_| AtomicBool::new(false)).collect(),
    };
    let table = ReservationTable::new(g.num_vertices());
    let (spec, outcome) = speculative_for_cancellable(&p, &table, 0, cancel);
    let mask = p
        .in_matching
        .into_iter()
        .map(AtomicBool::into_inner)
        .collect();
    Report::new(mask, spec.into()).with_outcome(outcome)
}

/// Check that `mask` is a *maximal* matching of `g`'s [`edge_list`].
pub fn is_maximal_matching(g: &Graph, mask: &[bool]) -> bool {
    let edges = edge_list(g);
    let mut matched = vec![false; g.num_vertices()];
    for (e, &(u, v)) in edges.iter().enumerate() {
        if mask[e] {
            if matched[u as usize] || matched[v as usize] {
                return false; // not a matching
            }
            matched[u as usize] = true;
            matched[v as usize] = true;
        }
    }
    // Maximality: every unmatched edge has a matched endpoint.
    edges
        .iter()
        .enumerate()
        .all(|(e, &(u, v))| mask[e] || matched[u as usize] || matched[v as usize])
}

/// Convenience: random edge priorities for `g`.
pub fn random_edge_priorities(g: &Graph, seed: u64) -> Vec<u32> {
    let m = edge_list(g).len();
    random_permutation(m, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    fn check(g: &Graph, seed: u64) {
        let pri = random_edge_priorities(g, seed);
        let a = matching_seq(g, &pri);
        let b = matching_par(g, &pri).output;
        assert!(is_maximal_matching(g, &a), "seq not maximal");
        assert_eq!(a, b, "par differs from greedy");
        let c = matching_reservations(g, &pri).output;
        assert_eq!(a, c, "reservations baseline differs from greedy");
    }

    #[test]
    fn agree_on_many_graphs() {
        check(&gen::uniform(300, 1200, 1), 20);
        check(&gen::cycle(100), 21);
        check(&gen::cycle(101), 22);
        check(&gen::star(50), 23);
        check(&gen::grid2d(12, 18), 24);
        check(&gen::rmat(8, 2048, 6), 25);
    }

    #[test]
    fn rounds_logarithmic_on_random() {
        let g = gen::uniform(4000, 16_000, 2);
        let pri = random_edge_priorities(&g, 3);
        let report = matching_par(&g, &pri);
        assert!(is_maximal_matching(&g, &report.output));
        assert!(report.stats.rounds <= 40, "rounds {}", report.stats.rounds);
    }

    #[test]
    fn star_matches_exactly_one_edge() {
        let g = gen::star(64);
        let pri = random_edge_priorities(&g, 4);
        let m = matching_par(&g, &pri).output;
        assert_eq!(m.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn reservations_rounds_match_dependence_depth() {
        let g = gen::uniform(4000, 16_000, 2);
        let pri = random_edge_priorities(&g, 3);
        let report = matching_reservations(&g, &pri);
        assert!(is_maximal_matching(&g, &report.output));
        assert!(report.stats.rounds <= 60, "rounds {}", report.stats.rounds);
        // The re-examination factor is the baseline's work overhead the
        // paper's Type 2 machinery removes; it is > 1 whenever any round
        // retries.
        assert!(report.stats.counter("attempts").unwrap() >= edge_list(&g).len() as u64);
    }

    #[test]
    fn path_alternating() {
        // A path matches at least floor(n/3)+... just check maximality
        // and greedy equality with adversarial priorities.
        let n = 101usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for i in 0..n - 1 {
            b.add(i as u32, i as u32 + 1);
        }
        let g = b.build();
        // Priorities in edge order → greedy matches 0-1, 2-3, ...
        let m_edges = edge_list(&g).len();
        let pri: Vec<u32> = (0..m_edges as u32).collect();
        let a = matching_seq(&g, &pri);
        let b2 = matching_par(&g, &pri).output;
        assert_eq!(a, b2);
        assert_eq!(a.iter().filter(|&&x| x).count(), n / 2);
    }
}
