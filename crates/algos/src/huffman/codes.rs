//! Canonical Huffman codes: turn a [`super::HuffmanTree`]'s code
//! lengths into concrete bit strings, with an encoder and decoder.
//!
//! Canonical coding assigns codes in (length, symbol) order, so only the
//! length vector matters — any optimal tree (sequential or parallel
//! construction, whatever the tie-breaks) yields a decoder-compatible
//! code. This is what makes the §6.2 experiment's output usable as an
//! actual compressor (see `examples/compression.rs`).

use super::HuffmanTree;

/// A canonical prefix code: `codes[s] = (length, bits)` with bits stored
/// in the low `length` positions, MSB-first.
pub struct CanonicalCode {
    codes: Vec<(u32, u64)>,
}

impl CanonicalCode {
    /// Build from a Huffman tree (equivalently: from its code lengths).
    pub fn from_tree(tree: &HuffmanTree) -> Self {
        Self::from_lengths(&tree.code_lengths())
    }

    /// Build from code lengths satisfying Kraft equality.
    pub fn from_lengths(lengths: &[u32]) -> Self {
        let n = lengths.len();
        assert!(n >= 1);
        if n == 1 {
            // Single symbol: one zero bit by convention.
            return Self {
                codes: vec![(1, 0)],
            };
        }
        assert!(
            lengths.iter().all(|&l| (1..=63).contains(&l)),
            "code lengths must be in 1..=63"
        );
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&s| (lengths[s as usize], s));
        let mut codes = vec![(0u32, 0u64); n];
        let mut code = 0u64;
        let mut prev_len = lengths[order[0] as usize];
        for &s in &order {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            prev_len = len;
            codes[s as usize] = (len, code);
            code += 1;
        }
        Self { codes }
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.codes.len()
    }

    /// `(length, bits)` of symbol `s`.
    pub fn code(&self, s: usize) -> (u32, u64) {
        self.codes[s]
    }

    /// Encode a symbol sequence into a bit vector.
    pub fn encode(&self, symbols: &[usize]) -> BitVec {
        let mut out = BitVec::new();
        for &s in symbols {
            let (len, bits) = self.codes[s];
            out.push_bits(bits, len);
        }
        out
    }

    /// Decode `count` symbols from a bit vector (walks a rebuilt
    /// decoding trie; `O(total code length)`).
    pub fn decode(&self, bits: &BitVec, count: usize) -> Vec<usize> {
        // Build the trie: node = (left, right) child indices, leaf = symbol.
        #[derive(Clone, Copy)]
        enum Node {
            Internal(u32, u32),
            Leaf(u32),
            Empty,
        }
        let mut trie = vec![Node::Empty];
        for (s, &(len, code)) in self.codes.iter().enumerate() {
            let mut cur = 0usize;
            for i in (0..len).rev() {
                let bit = (code >> i) & 1;
                let (l, r) = match trie[cur] {
                    Node::Internal(l, r) => (l, r),
                    Node::Empty => {
                        trie[cur] = Node::Internal(0, 0);
                        (0, 0)
                    }
                    Node::Leaf(_) => panic!("prefix violation"),
                };
                let child = if bit == 0 { l } else { r };
                let child = if child == 0 {
                    trie.push(Node::Empty);
                    let id = (trie.len() - 1) as u32;
                    if let Node::Internal(l, r) = trie[cur] {
                        trie[cur] = if bit == 0 {
                            Node::Internal(id, r)
                        } else {
                            Node::Internal(l, id)
                        };
                    }
                    id
                } else {
                    child
                };
                cur = child as usize;
            }
            trie[cur] = Node::Leaf(s as u32);
        }
        let mut out = Vec::with_capacity(count);
        let mut cur = 0usize;
        let mut pos = 0usize;
        while out.len() < count {
            match trie[cur] {
                Node::Leaf(s) => {
                    out.push(s as usize);
                    cur = 0;
                }
                Node::Internal(l, r) => {
                    let bit = bits.get(pos);
                    pos += 1;
                    cur = if bit { r as usize } else { l as usize };
                }
                Node::Empty => panic!("invalid code stream"),
            }
        }
        // Flush a trailing leaf if the last symbol ended exactly at `pos`.
        if let Node::Leaf(s) = trie[cur] {
            if out.len() < count {
                out.push(s as usize);
            }
        }
        out
    }
}

/// A growable bit vector (MSB-first within each pushed code).
#[derive(Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append the low `count` bits of `bits`, MSB-first.
    pub fn push_bits(&mut self, bits: u64, count: u32) {
        for i in (0..count).rev() {
            let bit = (bits >> i) & 1 == 1;
            let w = self.len / 64;
            if w == self.words.len() {
                self.words.push(0);
            }
            if bit {
                self.words[w] |= 1 << (self.len % 64);
            }
            self.len += 1;
        }
    }

    /// Bit at position `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::super::{build_par, build_seq};
    use super::*;
    use pp_parlay::rng::Rng;

    #[test]
    fn roundtrip_random_alphabets() {
        let mut r = Rng::new(1);
        for trial in 0..10 {
            let n = 2 + r.range(300) as usize;
            let freqs: Vec<u64> = (0..n).map(|_| 1 + r.range(1000)).collect();
            let tree = build_par(&freqs);
            let code = CanonicalCode::from_tree(&tree);
            let msg: Vec<usize> = (0..2000).map(|_| r.range(n as u64) as usize).collect();
            let bits = code.encode(&msg);
            let back = code.decode(&bits, msg.len());
            assert_eq!(back, msg, "trial {trial} n={n}");
        }
    }

    #[test]
    fn seq_and_par_trees_yield_same_canonical_lengths_cost() {
        // Different tie-breaks may shuffle individual lengths, but the
        // encoded size of any message distribution matching the
        // frequencies is identical (both trees are optimal).
        let mut r = Rng::new(2);
        let n = 128usize;
        let freqs: Vec<u64> = (0..n).map(|_| 1 + r.range(100)).collect();
        let c_seq = CanonicalCode::from_tree(&build_seq(&freqs));
        let c_par = CanonicalCode::from_tree(&build_par(&freqs));
        let cost =
            |c: &CanonicalCode| -> u64 { (0..n).map(|s| c.code(s).0 as u64 * freqs[s]).sum() };
        assert_eq!(cost(&c_seq), cost(&c_par));
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = vec![45u64, 13, 12, 16, 9, 5];
        let code = CanonicalCode::from_tree(&build_par(&freqs));
        for a in 0..freqs.len() {
            for b in 0..freqs.len() {
                if a == b {
                    continue;
                }
                let (la, ca) = code.code(a);
                let (lb, cb) = code.code(b);
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "code {a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        let code = CanonicalCode::from_lengths(&[5]); // clamped to 1 bit
        let bits = code.encode(&[0, 0, 0]);
        assert_eq!(code.decode(&bits, 3), vec![0, 0, 0]);
    }

    #[test]
    fn bitvec_push_get() {
        let mut bv = BitVec::new();
        bv.push_bits(0b101, 3);
        bv.push_bits(0b01, 2);
        assert_eq!(bv.len(), 5);
        let got: Vec<bool> = (0..5).map(|i| bv.get(i)).collect();
        assert_eq!(got, vec![true, false, true, false, true]);
    }
}
