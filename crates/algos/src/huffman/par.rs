//! Phase-parallel Huffman construction (§4.3, Theorem 4.7).
//!
//! Round structure: with the current objects sorted by frequency, let
//! `f_m` be the sum of the two smallest. Every object with frequency
//! `< f_m` is ready (no later merge can produce a smaller frequency);
//! pair them consecutively in sorted order — consecutive sums are
//! nondecreasing, so the new internal nodes come out sorted — and merge
//! them back into the remainder with a parallel merge. If the frontier
//! is odd, the *largest* member is postponed (never an ancestor of the
//! least leaf, so the round count stays ≤ the tree height `H`).

use super::HuffmanTree;
use phase_parallel::{run_type1_cancellable, CancelToken, Report, Type1Problem};
use pp_parlay::merge::par_merge_by;
use rayon::prelude::*;

/// Build a Huffman tree in parallel. Frequencies must be ≥ 1.
pub fn build_par(freqs: &[u64]) -> HuffmanTree {
    build_par_with_stats(freqs).output
}

/// [`build_par`] plus round statistics (`stats.rounds ≤ height`).
pub fn build_par_with_stats(freqs: &[u64]) -> Report<HuffmanTree> {
    build_par_cancellable(freqs, None)
}

/// [`build_par_with_stats`] under an optional deadline: the merge-round
/// loop polls `cancel`; a trip self-parents every unmerged object (a
/// well-formed *forest*, acyclic for depth queries) and reports
/// `RunOutcome::DeadlineExceeded` — the partial result is not a prefix
/// code and must only be inspected, not decoded.
pub fn build_par_cancellable(freqs: &[u64], cancel: Option<&CancelToken>) -> Report<HuffmanTree> {
    let n = freqs.len();
    assert!(n >= 1);
    assert!(freqs.iter().all(|&f| f >= 1), "frequencies must be >= 1");
    if n == 1 {
        return Report::plain(HuffmanTree::new(vec![0], 1));
    }
    // Objects sorted by (frequency, id).
    let mut items: Vec<(u64, u32)> = freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i as u32))
        .collect();
    pp_parlay::par_sort(&mut items);

    struct Problem {
        items: Vec<(u64, u32)>,
        pending: Vec<(u64, u32)>,
        parent: Vec<u32>,
        next_id: u32,
    }

    impl Type1Problem for Problem {
        type Output = (Vec<u32>, u32);

        fn extract_frontier(&mut self) -> Vec<u32> {
            if self.items.len() <= 1 {
                return Vec::new();
            }
            let f_m = self.items[0].0 + self.items[1].0;
            let mut cnt = self.items.partition_point(|&(f, _)| f < f_m);
            debug_assert!(cnt >= 2, "two minima are always below their sum");
            if cnt % 2 == 1 {
                cnt -= 1; // postpone the largest frontier member
            }
            let rest = self.items.split_off(cnt);
            self.pending = std::mem::replace(&mut self.items, rest);
            self.pending.iter().map(|&(_, id)| id).collect()
        }

        fn process(&mut self, _frontier: &[u32]) {
            let pairs = self.pending.len() / 2;
            let base = self.next_id;
            // Parent links for both halves of each pair.
            let pending = std::mem::take(&mut self.pending);
            for (p, chunk) in pending.chunks_exact(2).enumerate() {
                let id = base + p as u32;
                self.parent[chunk[0].1 as usize] = id;
                self.parent[chunk[1].1 as usize] = id;
            }
            self.next_id += pairs as u32;
            // New internal nodes: (sum, id), sorted by construction.
            let new_nodes: Vec<(u64, u32)> = pending
                .par_chunks_exact(2)
                .enumerate()
                .map(|(p, chunk)| (chunk[0].0 + chunk[1].0, base + p as u32))
                .collect();
            debug_assert!(new_nodes.windows(2).all(|w| w[0].0 <= w[1].0));
            // Merge back into the remaining sorted objects.
            let old = std::mem::take(&mut self.items);
            let mut merged = vec![(0u64, 0u32); old.len() + new_nodes.len()];
            par_merge_by(&old, &new_nodes, &mut merged, &|a, b| a < b);
            self.items = merged;
        }

        fn finish(self) -> (Vec<u32>, u32) {
            (self.parent, self.next_id)
        }
    }

    let ((mut parent, next_id), stats, outcome) = run_type1_cancellable(
        Problem {
            items,
            pending: Vec::new(),
            parent: vec![0u32; 2 * n - 1],
            next_id: n as u32,
        },
        cancel,
    );
    if outcome.is_complete() {
        debug_assert_eq!(next_id as usize, 2 * n - 1);
        let root = next_id - 1;
        parent[root as usize] = root;
    } else {
        // Early stop: every node not yet merged still holds the sentinel
        // parent 0 — unambiguous, since real parents are internal ids
        // ≥ n. Self-parent them so the partial forest stays acyclic.
        for (id, p) in parent.iter_mut().enumerate() {
            if (*p as usize) < n {
                *p = id as u32;
            }
        }
    }
    Report::new(HuffmanTree::new(parent, n), stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_pairing_round_trace() {
        // freqs 1,1,1,1: f_m = 2, all four in the frontier, one round of
        // two pairs, then 2,2 → one more round, then 4 alone.
        let stats = build_par_with_stats(&[1, 1, 1, 1]).stats;
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.frontier_sizes, vec![4, 2]);
    }

    #[test]
    fn odd_frontier_postpones_largest() {
        // freqs 1,1,2: f_m = 2, frontier = {1,1} (2 not < 2) → pair →
        // items {2,2} → round 2.
        let report = build_par_with_stats(&[1, 1, 2]);
        let (t, stats) = (report.output, report.stats);
        assert_eq!(stats.rounds, 2);
        // Depths: leaves 1,1 at depth 2; leaf 2 at depth 1 → WPL = 6.
        assert_eq!(t.weighted_path_length(&[1, 1, 2]), 6);
    }
}
