//! Sequential Huffman construction: the two-queue `O(n)` algorithm after
//! sorting — the "version which costs O(n) work after sorting" used as
//! the §6.2 baseline.

use super::HuffmanTree;
use std::collections::VecDeque;

/// Build a Huffman tree over `freqs` (input order preserved in leaf ids).
pub fn build_seq(freqs: &[u64]) -> HuffmanTree {
    let n = freqs.len();
    assert!(n >= 1);
    if n == 1 {
        return HuffmanTree::new(vec![0], 1);
    }
    // Sort leaf ids by frequency.
    let mut leaves: Vec<u32> = (0..n as u32).collect();
    leaves.sort_by_key(|&i| (freqs[i as usize], i));
    let mut leaf_q: VecDeque<(u64, u32)> =
        leaves.into_iter().map(|i| (freqs[i as usize], i)).collect();
    // Internal nodes are produced in nondecreasing frequency order.
    let mut internal_q: VecDeque<(u64, u32)> = VecDeque::with_capacity(n - 1);
    let mut parent = vec![0u32; 2 * n - 1];
    let mut next_id = n as u32;

    let pop_min =
        |leaf_q: &mut VecDeque<(u64, u32)>, internal_q: &mut VecDeque<(u64, u32)>| -> (u64, u32) {
            match (leaf_q.front(), internal_q.front()) {
                (Some(&l), Some(&i)) => {
                    if l.0 <= i.0 {
                        leaf_q.pop_front().unwrap()
                    } else {
                        internal_q.pop_front().unwrap()
                    }
                }
                (Some(_), None) => leaf_q.pop_front().unwrap(),
                (None, Some(_)) => internal_q.pop_front().unwrap(),
                (None, None) => unreachable!("queues exhausted early"),
            }
        };

    for _ in 0..n - 1 {
        let (fa, a) = pop_min(&mut leaf_q, &mut internal_q);
        let (fb, b) = pop_min(&mut leaf_q, &mut internal_q);
        parent[a as usize] = next_id;
        parent[b as usize] = next_id;
        internal_q.push_back((fa + fb, next_id));
        next_id += 1;
    }
    let root = next_id - 1;
    parent[root as usize] = root;
    HuffmanTree::new(parent, n)
}

/// Textbook heap-based construction (`O(n log n)` after no sorting at
/// all) — the CLRS pseudocode, kept as an independent oracle for
/// [`build_seq`]: with the same deterministic tie-break (smaller id
/// first), both produce optimal trees of equal weighted path length.
pub fn build_seq_heap(freqs: &[u64]) -> HuffmanTree {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = freqs.len();
    assert!(n >= 1);
    if n == 1 {
        return HuffmanTree::new(vec![0], 1);
    }
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| Reverse((f, i as u32)))
        .collect();
    let mut parent = vec![0u32; 2 * n - 1];
    let mut next_id = n as u32;
    while heap.len() >= 2 {
        let Reverse((fa, a)) = heap.pop().unwrap();
        let Reverse((fb, b)) = heap.pop().unwrap();
        parent[a as usize] = next_id;
        parent[b as usize] = next_id;
        heap.push(Reverse((fa + fb, next_id)));
        next_id += 1;
    }
    let root = next_id - 1;
    parent[root as usize] = root;
    HuffmanTree::new(parent, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;

    #[test]
    fn two_leaves() {
        let t = build_seq(&[1, 2]);
        assert_eq!(t.parents(), &[2, 2, 2]);
        assert_eq!(t.code_lengths(), vec![1, 1]);
    }

    #[test]
    fn two_queue_matches_heap_wpl() {
        let mut r = Rng::new(8);
        for trial in 0..20 {
            let n = 1 + r.range(400) as usize;
            let freqs: Vec<u64> = (0..n).map(|_| 1 + r.range(1000)).collect();
            let a = build_seq(&freqs);
            let b = build_seq_heap(&freqs);
            assert!(a.kraft_holds() && b.kraft_holds(), "trial {trial}");
            assert_eq!(
                a.weighted_path_length(&freqs),
                b.weighted_path_length(&freqs),
                "trial {trial}: two-queue vs heap WPL"
            );
        }
    }

    #[test]
    fn heap_adversarial_equal_frequencies() {
        let freqs = vec![5u64; 33];
        let t = build_seq_heap(&freqs);
        assert!(t.kraft_holds());
        assert_eq!(
            t.weighted_path_length(&freqs),
            build_seq(&freqs).weighted_path_length(&freqs)
        );
    }

    #[test]
    fn internal_queue_monotone_invariant() {
        // The two-queue algorithm relies on internal nodes being created
        // in nondecreasing frequency order; verify via WPL optimality on
        // an adversarial all-equal input.
        let freqs = vec![5u64; 33];
        let t = build_seq(&freqs);
        assert!(t.kraft_holds());
        // ceil/floor balanced: heights are log2(33) rounded.
        let h = t.height();
        assert!(h == 6, "height {h}");
    }
}
