//! Huffman tree construction (§4.3, Theorem 4.7; experiments §6.2).
//!
//! Sequentially: repeatedly merge the two least-frequent objects. The
//! dependence graph *is* the Huffman tree; the (relaxed) rank of a node
//! is derived from the frequency ladder of the least-frequent leaf's
//! root path (Definition 4.6). In parallel, once the two global minima
//! sum to `f_m`, **every** object with frequency `< f_m` is ready: pair
//! them up in sorted order, emit `|T|/2` internal nodes, and merge the
//! (already sorted) sums back — `O(n log n)` work, `O(H log n)` span for
//! tree height `H`.
//!
//! Both implementations return a [`HuffmanTree`]; they may differ in
//! shape on ties but always agree on the *weighted path length* (both
//! are optimal prefix codes), which the tests assert.

mod codes;
mod par;
mod seq;

pub use codes::{BitVec, CanonicalCode};
pub use par::{build_par, build_par_cancellable, build_par_with_stats};
pub use seq::{build_seq, build_seq_heap};

/// A Huffman tree over `n` leaves as a parent-pointer array: nodes
/// `0..n` are the input objects (in input order), nodes `n..2n-1` the
/// internal merges; the root is its own parent.
pub struct HuffmanTree {
    parent: Vec<u32>,
    n_leaves: usize,
}

impl HuffmanTree {
    /// Construct from a parent array (root self-parented).
    pub fn new(parent: Vec<u32>, n_leaves: usize) -> Self {
        assert!(n_leaves >= 1);
        assert_eq!(
            parent.len(),
            if n_leaves == 1 { 1 } else { 2 * n_leaves - 1 }
        );
        Self { parent, n_leaves }
    }

    /// Number of leaves (input objects).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Parent array (leaves first, then internal nodes).
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Depth of every node (root depth 0), in parallel.
    pub fn depths(&self) -> Vec<u32> {
        pp_parlay::list_rank::forest_depths(&self.parent)
    }

    /// Code length of each leaf = its depth.
    pub fn code_lengths(&self) -> Vec<u32> {
        let mut d = self.depths();
        d.truncate(self.n_leaves);
        d
    }

    /// Tree height = maximum leaf depth (the paper's rank / round count
    /// driver, `H`).
    pub fn height(&self) -> u32 {
        self.code_lengths().into_iter().max().unwrap_or(0)
    }

    /// Weighted path length `Σ freq_i · depth_i` — the cost every optimal
    /// Huffman tree minimizes; implementation-independent.
    pub fn weighted_path_length(&self, freqs: &[u64]) -> u64 {
        assert_eq!(freqs.len(), self.n_leaves);
        self.code_lengths()
            .iter()
            .zip(freqs)
            .map(|(&d, &f)| d as u64 * f)
            .sum()
    }

    /// Kraft sum check: `Σ 2^-depth == 1` over leaves (valid full binary
    /// code tree). For tests.
    pub fn kraft_holds(&self) -> bool {
        if self.n_leaves == 1 {
            return true;
        }
        // Scale by 2^64 shifted by max depth to stay in integers.
        let lens = self.code_lengths();
        let max = *lens.iter().max().unwrap();
        let mut sum: u128 = 0;
        for &l in &lens {
            sum += 1u128 << (max - l);
        }
        sum == 1u128 << max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;

    /// Brute-force optimal WPL via the sequential greedy with a heap
    /// (independent of either implementation's pairing choices).
    fn oracle_wpl(freqs: &[u64]) -> u64 {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if freqs.len() == 1 {
            return 0;
        }
        let mut h: BinaryHeap<Reverse<u64>> = freqs.iter().map(|&f| Reverse(f)).collect();
        let mut total = 0u64;
        while h.len() > 1 {
            let a = h.pop().unwrap().0;
            let b = h.pop().unwrap().0;
            total += a + b;
            h.push(Reverse(a + b));
        }
        total
    }

    #[test]
    fn seq_and_par_are_optimal() {
        let mut r = Rng::new(8);
        for trial in 0..25 {
            let n = 1 + r.range(200) as usize;
            let freqs: Vec<u64> = (0..n).map(|_| 1 + r.range(1000)).collect();
            let want = oracle_wpl(&freqs);
            let ts = build_seq(&freqs);
            let tp = build_par(&freqs);
            assert_eq!(ts.weighted_path_length(&freqs), want, "seq trial {trial}");
            assert_eq!(tp.weighted_path_length(&freqs), want, "par trial {trial}");
            assert!(ts.kraft_holds());
            assert!(tp.kraft_holds());
        }
    }

    #[test]
    fn classic_abc_example() {
        // freqs (a:45 b:13 c:12 d:16 e:9 f:5) — CLRS Fig 16.4; optimal
        // WPL = 224.
        let freqs = vec![45, 13, 12, 16, 9, 5];
        assert_eq!(oracle_wpl(&freqs), 224);
        assert_eq!(build_seq(&freqs).weighted_path_length(&freqs), 224);
        assert_eq!(build_par(&freqs).weighted_path_length(&freqs), 224);
    }

    #[test]
    fn uniform_frequencies_balanced_tree() {
        let freqs = vec![1u64; 64];
        let t = build_par(&freqs);
        assert_eq!(t.height(), 6); // perfectly balanced
        assert!(t.code_lengths().iter().all(|&l| l == 6));
    }

    #[test]
    fn exponential_frequencies_skewed_tree() {
        // 1, 1, 2, 4, ..., 2^k: maximally skewed — height = n - 1.
        let freqs: Vec<u64> = std::iter::once(1)
            .chain((0..20).map(|i| 1u64 << i))
            .collect();
        let t = build_par(&freqs);
        assert_eq!(t.height() as usize, freqs.len() - 1);
        assert_eq!(
            t.weighted_path_length(&freqs),
            build_seq(&freqs).weighted_path_length(&freqs)
        );
    }

    #[test]
    fn rounds_bounded_by_height() {
        let mut r = Rng::new(9);
        let freqs: Vec<u64> = (0..10_000).map(|_| 1 + r.range(1000)).collect();
        let report = build_par_with_stats(&freqs);
        let (t, stats) = (report.output, report.stats);
        // Round-efficient: O(H) rounds (odd-frontier postponement can
        // cost a few extra rounds beyond H itself, §4.3 remark).
        assert!(
            stats.rounds as u32 <= t.height() + 3,
            "rounds {} > height {} + 3",
            stats.rounds,
            t.height()
        );
    }

    #[test]
    fn tiny_inputs() {
        let t = build_par(&[7]);
        assert_eq!(t.height(), 0);
        assert_eq!(t.weighted_path_length(&[7]), 0);
        let t = build_par(&[3, 5]);
        assert_eq!(t.height(), 1);
        assert_eq!(t.weighted_path_length(&[3, 5]), 8);
        let t = build_seq(&[3, 5]);
        assert_eq!(t.weighted_path_length(&[3, 5]), 8);
    }
}
