//! Typed [`PhaseAlgorithm`] implementations for every algorithm family.
//!
//! Each unit struct binds a family's sequential baseline and
//! phase-parallel execution to the unified trait, so any family can be
//! driven through a [`phase_parallel::Solver`] or type-erased behind the
//! string-keyed [`crate::registry`]. Multi-part instances get small
//! input structs ([`SsspInstance`], [`GraphPriorityInstance`]) instead
//! of anonymous tuples where field names carry meaning.
//!
//! Luby's MIS is deliberately absent: it is *not* sequential-equivalent
//! (values are redrawn every round), so it cannot satisfy the trait's
//! `solve_par == solve_seq` contract; call [`crate::mis::mis_luby`]
//! directly.
//!
//! ```
//! use phase_parallel::{RunConfig, Solver};
//! use pp_algos::api::Lis;
//!
//! let solver = Solver::new(Lis).with_config(RunConfig::seeded(7));
//! let report = solver.solve_checked(&[4i64, 7, 3, 2, 8, 1, 6, 5]);
//! assert_eq!(report.output, 3);
//! ```

use crate::activity::{self, Activity};
use crate::chain3d::{chain3d_par, chain3d_seq, Point3};
use crate::chain4d::{chain4d_par, chain4d_seq, Point4};
use crate::coloring::coloring_seq;
use crate::huffman;
use crate::knapsack::{self, Item};
use crate::lis;
use crate::matching;
use crate::mis;
use crate::random_perm;
use crate::sssp;
use crate::whac::{whac2d_par, whac2d_seq, whac_par, whac_seq, Mole, Mole2d};
use phase_parallel::{PhaseAlgorithm, Report, RunConfig, Scratch};
use pp_graph::Graph;

/// An SSSP instance: a weighted graph and a default source vertex
/// (per-query overrides come from [`RunConfig::source`]).
pub struct SsspInstance {
    pub graph: Graph,
    pub source: u32,
}

impl SsspInstance {
    pub fn new(graph: Graph, source: u32) -> Self {
        Self { graph, source }
    }

    /// The source a given query runs from: the query's override or
    /// this instance's default.
    pub fn source_for(&self, cfg: &RunConfig) -> u32 {
        cfg.source.unwrap_or(self.source)
    }
}

/// Shared prepare/query boilerplate for the SSSP family: every member
/// amortizes the same [`sssp::PreparedSssp`] (w*, per-vertex minimum
/// out-weights) and differs only in how a query runs against it.
macro_rules! impl_sssp_prepare {
    () => {
        type Prepared<'i>
            = sssp::PreparedSssp<'i>
        where
            Self: 'i,
            Self::Input: 'i;

        fn prepare<'i>(&self, input: &'i SsspInstance) -> sssp::PreparedSssp<'i> {
            sssp::PreparedSssp::new(&input.graph, input.source)
        }
    };
}

/// A prepared greedy-MIS instance: the borrowed input plus the CSR
/// mirrors (reverse-arc slots, blocking ranks, TAS-tree leaf counts)
/// that Algorithm 4 walks — built once, queried per run.
pub struct PreparedMis<'i> {
    pub instance: &'i GraphPriorityInstance,
    pub mirrors: mis::BlockingMirrors,
}

/// A prepared coloring instance: the borrowed input plus the TAS-tree
/// leaf counts (blocking-neighbor counts).
pub struct PreparedColoring<'i> {
    pub instance: &'i GraphPriorityInstance,
    pub counts: Vec<u32>,
}

/// A prepared matching instance: the borrowed input plus the canonical
/// undirected edge list.
pub struct PreparedMatching<'i> {
    pub instance: &'i GraphPriorityInstance,
    pub edges: Vec<(u32, u32)>,
}

/// A prepared reservations-matching instance: additionally carries the
/// priority-sorted iterate order the speculative-for baseline consumes
/// (the round-synchronous [`Matching`] never needs it, so it lives in a
/// separate type rather than being computed and thrown away).
pub struct PreparedMatchingReservations<'i> {
    pub instance: &'i GraphPriorityInstance,
    pub edges: Vec<(u32, u32)>,
    pub order: Vec<u32>,
}

/// A greedy-graph-algorithm instance: a graph plus one priority per
/// vertex (MIS, coloring) or per [`matching::edge_list`] edge
/// (matching).
pub struct GraphPriorityInstance {
    pub graph: Graph,
    pub priority: Vec<u32>,
}

impl GraphPriorityInstance {
    pub fn new(graph: Graph, priority: Vec<u32>) -> Self {
        Self { graph, priority }
    }
}

/// Longest increasing subsequence (Algorithm 3, Type 2).
pub struct Lis;

impl PhaseAlgorithm for Lis {
    type Input = [i64];
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "lis"
    }
    fn solve_seq(&self, input: &[i64]) -> u32 {
        lis::lis_seq(input)
    }
    fn solve_par(&self, input: &[i64], cfg: &RunConfig) -> Report<u32> {
        lis::lis_par(input, cfg)
    }
}

/// Weighted LIS (§5.2 generalization): input `(values, weights)`,
/// output the maximum total weight.
pub struct WeightedLis;

impl PhaseAlgorithm for WeightedLis {
    type Input = (Vec<i64>, Vec<u32>);
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "lis/weighted"
    }
    fn solve_seq(&self, (values, weights): &Self::Input) -> u32 {
        lis::lis_weighted_seq(values, weights)
    }
    fn solve_par(&self, (values, weights): &Self::Input, cfg: &RunConfig) -> Report<u32> {
        lis::lis_weighted_par(values, weights, cfg).map(|(best, _)| best)
    }
}

/// Weighted activity selection via Type 1 frontier extraction
/// (Algorithm 2, flat arrays). Input must be sorted by end time
/// ([`activity::sort_by_end`]).
pub struct ActivityType1;

impl PhaseAlgorithm for ActivityType1 {
    type Input = [Activity];
    type Output = u64;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "activity/type1"
    }
    fn solve_seq(&self, input: &[Activity]) -> u64 {
        activity::max_weight_seq(input)
    }
    fn solve_par(&self, input: &[Activity], cfg: &RunConfig) -> Report<u64> {
        activity::max_weight_type1_cancellable(input, cfg.cancel.as_ref())
    }
}

/// Weighted activity selection on the literal PA-BST Algorithm 2.
pub struct ActivityType1Pam;

impl PhaseAlgorithm for ActivityType1Pam {
    type Input = [Activity];
    type Output = u64;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "activity/type1-pam"
    }
    fn solve_seq(&self, input: &[Activity]) -> u64 {
        activity::max_weight_seq(input)
    }
    fn solve_par(&self, input: &[Activity], cfg: &RunConfig) -> Report<u64> {
        activity::max_weight_type1_pam_cancellable(input, cfg.cancel.as_ref())
    }
}

/// Weighted activity selection via Type 2 pivot wake-up (§5.1).
pub struct ActivityType2;

impl PhaseAlgorithm for ActivityType2 {
    type Input = [Activity];
    type Output = u64;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "activity/type2"
    }
    fn solve_seq(&self, input: &[Activity]) -> u64 {
        activity::max_weight_seq(input)
    }
    fn solve_par(&self, input: &[Activity], cfg: &RunConfig) -> Report<u64> {
        activity::max_weight_type2_cancellable(input, cfg.cancel.as_ref())
    }
}

/// Unweighted activity selection (Theorem 5.3): maximum *count* of
/// non-overlapping activities.
pub struct UnweightedActivity;

impl PhaseAlgorithm for UnweightedActivity {
    type Input = [Activity];
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "activity/unweighted"
    }
    fn solve_seq(&self, input: &[Activity]) -> u32 {
        // The classic earliest-end greedy over end-sorted activities.
        let mut count = 0u32;
        let mut free_from = 0u64;
        for a in input {
            if a.start >= free_from {
                count += 1;
                free_from = a.end;
            }
        }
        count
    }
    fn solve_par(&self, input: &[Activity], cfg: &RunConfig) -> Report<u32> {
        activity::max_count_unweighted_cancellable(input, cfg.cancel.as_ref())
    }
}

/// Unlimited knapsack (§4.2): input `(items, capacity)`.
pub struct Knapsack;

impl PhaseAlgorithm for Knapsack {
    type Input = (Vec<Item>, u64);
    type Output = u64;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "knapsack"
    }
    fn solve_seq(&self, (items, capacity): &Self::Input) -> u64 {
        knapsack::max_value_seq(items, *capacity)
    }
    fn solve_par(&self, (items, capacity): &Self::Input, cfg: &RunConfig) -> Report<u64> {
        knapsack::max_value_par_cancellable(items, *capacity, cfg.cancel.as_ref())
    }
}

/// Huffman tree construction (§4.3). The output is the weighted path
/// length: tie-breaking may legally produce different tree *shapes*,
/// but every optimal prefix code has the same WPL.
pub struct Huffman;

impl PhaseAlgorithm for Huffman {
    type Input = [u64];
    type Output = u64;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "huffman"
    }
    fn solve_seq(&self, freqs: &[u64]) -> u64 {
        huffman::build_seq(freqs).weighted_path_length(freqs)
    }
    fn solve_par(&self, freqs: &[u64], cfg: &RunConfig) -> Report<u64> {
        huffman::build_par_cancellable(freqs, cfg.cancel.as_ref())
            .map(|t| t.weighted_path_length(freqs))
    }
}

/// SSSP by Δ-stepping; Δ from [`RunConfig::delta`], default w*
/// (the paper's phase-parallel choice, Theorem 4.5).
pub struct DeltaSssp;

impl PhaseAlgorithm for DeltaSssp {
    type Input = SsspInstance;
    type Output = Vec<u64>;
    impl_sssp_prepare!();
    fn name(&self) -> &'static str {
        "sssp/delta"
    }
    fn solve_seq(&self, input: &SsspInstance) -> Vec<u64> {
        sssp::dijkstra(&input.graph, input.source)
    }
    fn solve_par(&self, input: &SsspInstance, cfg: &RunConfig) -> Report<Vec<u64>> {
        sssp::delta_stepping(&input.graph, input.source_for(cfg), cfg)
    }
    fn solve_prepared(
        &self,
        prepared: &sssp::PreparedSssp<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u64>> {
        sssp::delta_stepping_prepared(prepared, scratch, cfg)
    }
}

/// SSSP by ρ-stepping; ρ from [`RunConfig::rho`].
pub struct RhoSssp;

impl PhaseAlgorithm for RhoSssp {
    type Input = SsspInstance;
    type Output = Vec<u64>;
    impl_sssp_prepare!();
    fn name(&self) -> &'static str {
        "sssp/rho"
    }
    fn solve_seq(&self, input: &SsspInstance) -> Vec<u64> {
        sssp::dijkstra(&input.graph, input.source)
    }
    fn solve_par(&self, input: &SsspInstance, cfg: &RunConfig) -> Report<Vec<u64>> {
        sssp::rho_stepping(&input.graph, input.source_for(cfg), cfg)
    }
    fn solve_prepared(
        &self,
        prepared: &sssp::PreparedSssp<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u64>> {
        sssp::rho_stepping_prepared(prepared, scratch, cfg)
    }
}

/// SSSP by Crauser et al.'s OUT-criterion relaxed rank.
pub struct CrauserSssp;

impl PhaseAlgorithm for CrauserSssp {
    type Input = SsspInstance;
    type Output = Vec<u64>;
    impl_sssp_prepare!();
    fn name(&self) -> &'static str {
        "sssp/crauser"
    }
    fn solve_seq(&self, input: &SsspInstance) -> Vec<u64> {
        sssp::dijkstra(&input.graph, input.source)
    }
    fn solve_par(&self, input: &SsspInstance, cfg: &RunConfig) -> Report<Vec<u64>> {
        sssp::crauser_out_with(&input.graph, input.source_for(cfg), cfg)
    }
    fn solve_prepared(
        &self,
        prepared: &sssp::PreparedSssp<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u64>> {
        sssp::crauser_out_prepared(prepared, scratch, cfg)
    }
}

/// SSSP on the literal Theorem 4.5 PA-BST algorithm.
pub struct PamSssp;

impl PhaseAlgorithm for PamSssp {
    type Input = SsspInstance;
    type Output = Vec<u64>;
    impl_sssp_prepare!();
    fn name(&self) -> &'static str {
        "sssp/pam"
    }
    fn solve_seq(&self, input: &SsspInstance) -> Vec<u64> {
        sssp::dijkstra(&input.graph, input.source)
    }
    fn solve_par(&self, input: &SsspInstance, cfg: &RunConfig) -> Report<Vec<u64>> {
        sssp::sssp_pam_with(&input.graph, input.source_for(cfg), cfg.cancel.as_ref())
    }
    fn solve_prepared(
        &self,
        prepared: &sssp::PreparedSssp<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u64>> {
        sssp::sssp_pam_prepared(prepared, scratch, cfg)
    }
}

/// SSSP by parallel Bellman-Ford — the work-inefficient baseline.
pub struct BellmanFordSssp;

impl PhaseAlgorithm for BellmanFordSssp {
    type Input = SsspInstance;
    type Output = Vec<u64>;
    impl_sssp_prepare!();
    fn name(&self) -> &'static str {
        "sssp/bellman-ford"
    }
    fn solve_seq(&self, input: &SsspInstance) -> Vec<u64> {
        sssp::dijkstra(&input.graph, input.source)
    }
    fn solve_par(&self, input: &SsspInstance, cfg: &RunConfig) -> Report<Vec<u64>> {
        sssp::bellman_ford_with(&input.graph, input.source_for(cfg), cfg)
    }
    fn solve_prepared(
        &self,
        prepared: &sssp::PreparedSssp<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u64>> {
        sssp::bellman_ford_prepared(prepared, scratch, cfg)
    }
}

/// SSSP by sequential Dijkstra behind the unified interface: the engine
/// for serving *point* queries from a prepared instance (a batched
/// solve parallelizes across queries rather than within one).
pub struct DijkstraSssp;

impl PhaseAlgorithm for DijkstraSssp {
    type Input = SsspInstance;
    type Output = Vec<u64>;
    impl_sssp_prepare!();
    fn name(&self) -> &'static str {
        "sssp/dijkstra"
    }
    fn solve_seq(&self, input: &SsspInstance) -> Vec<u64> {
        sssp::dijkstra(&input.graph, input.source)
    }
    fn solve_par(&self, input: &SsspInstance, cfg: &RunConfig) -> Report<Vec<u64>> {
        let (dist, outcome) =
            sssp::dijkstra_cancellable(&input.graph, input.source_for(cfg), cfg.cancel.as_ref());
        Report::plain(dist).with_outcome(outcome)
    }
    fn solve_prepared(
        &self,
        prepared: &sssp::PreparedSssp<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u64>> {
        let (dist, outcome) = sssp::dijkstra_prepared(prepared, scratch, cfg);
        Report::plain(dist).with_outcome(outcome)
    }
}

/// Greedy MIS via asynchronous TAS trees (Algorithm 4).
pub struct GreedyMis;

impl PhaseAlgorithm for GreedyMis {
    type Input = GraphPriorityInstance;
    type Output = Vec<bool>;
    type Prepared<'i>
        = PreparedMis<'i>
    where
        Self: 'i,
        Self::Input: 'i;

    fn name(&self) -> &'static str {
        "mis/tas"
    }
    fn solve_seq(&self, input: &GraphPriorityInstance) -> Vec<bool> {
        mis::mis_seq(&input.graph, &input.priority)
    }
    fn solve_par(&self, input: &GraphPriorityInstance, cfg: &RunConfig) -> Report<Vec<bool>> {
        let mirrors = mis::blocking_mirrors(&input.graph, &input.priority);
        let (out, outcome) = mis::mis_tas_prepared_cancellable(
            &input.graph,
            &input.priority,
            &mirrors,
            &mut Scratch::new(),
            cfg.cancel.as_ref(),
        );
        Report::plain(out).with_outcome(outcome)
    }
    fn prepare<'i>(&self, input: &'i GraphPriorityInstance) -> PreparedMis<'i> {
        PreparedMis {
            instance: input,
            mirrors: mis::blocking_mirrors(&input.graph, &input.priority),
        }
    }
    fn solve_prepared(
        &self,
        prepared: &PreparedMis<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<bool>> {
        let inst = prepared.instance;
        let (out, outcome) = mis::mis_tas_prepared_cancellable(
            &inst.graph,
            &inst.priority,
            &prepared.mirrors,
            scratch,
            cfg.cancel.as_ref(),
        );
        Report::plain(out).with_outcome(outcome)
    }
}

/// Greedy MIS via round-synchronous deterministic reservations (the
/// prior-work baseline the paper improves on).
pub struct RoundsMis;

impl PhaseAlgorithm for RoundsMis {
    type Input = GraphPriorityInstance;
    type Output = Vec<bool>;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "mis/rounds"
    }
    fn solve_seq(&self, input: &GraphPriorityInstance) -> Vec<bool> {
        mis::mis_seq(&input.graph, &input.priority)
    }
    fn solve_par(&self, input: &GraphPriorityInstance, cfg: &RunConfig) -> Report<Vec<bool>> {
        mis::mis_rounds_cancellable(&input.graph, &input.priority, cfg.cancel.as_ref())
    }
}

/// Greedy (Jones–Plassmann) coloring via TAS trees (§5.3).
pub struct Coloring;

impl PhaseAlgorithm for Coloring {
    type Input = GraphPriorityInstance;
    type Output = Vec<u32>;
    type Prepared<'i>
        = PreparedColoring<'i>
    where
        Self: 'i,
        Self::Input: 'i;

    fn name(&self) -> &'static str {
        "coloring"
    }
    fn solve_seq(&self, input: &GraphPriorityInstance) -> Vec<u32> {
        coloring_seq(&input.graph, &input.priority)
    }
    fn solve_par(&self, input: &GraphPriorityInstance, cfg: &RunConfig) -> Report<Vec<u32>> {
        let counts = crate::coloring::blocking_counts(&input.graph, &input.priority);
        let (out, outcome) = crate::coloring::coloring_par_prepared_cancellable(
            &input.graph,
            &input.priority,
            &counts,
            &mut Scratch::new(),
            cfg.cancel.as_ref(),
        );
        Report::plain(out).with_outcome(outcome)
    }
    fn prepare<'i>(&self, input: &'i GraphPriorityInstance) -> PreparedColoring<'i> {
        PreparedColoring {
            instance: input,
            counts: crate::coloring::blocking_counts(&input.graph, &input.priority),
        }
    }
    fn solve_prepared(
        &self,
        prepared: &PreparedColoring<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<u32>> {
        let inst = prepared.instance;
        let (out, outcome) = crate::coloring::coloring_par_prepared_cancellable(
            &inst.graph,
            &inst.priority,
            &prepared.counts,
            scratch,
            cfg.cancel.as_ref(),
        );
        Report::plain(out).with_outcome(outcome)
    }
}

/// Greedy maximal matching, round-synchronous (§5.3). Priorities rank
/// the edges of [`matching::edge_list`].
pub struct Matching;

impl PhaseAlgorithm for Matching {
    type Input = GraphPriorityInstance;
    type Output = Vec<bool>;
    type Prepared<'i>
        = PreparedMatching<'i>
    where
        Self: 'i,
        Self::Input: 'i;

    fn name(&self) -> &'static str {
        "matching"
    }
    fn solve_seq(&self, input: &GraphPriorityInstance) -> Vec<bool> {
        matching::matching_seq(&input.graph, &input.priority)
    }
    fn solve_par(&self, input: &GraphPriorityInstance, cfg: &RunConfig) -> Report<Vec<bool>> {
        matching::matching_par_prepared_cancellable(
            &input.graph,
            &input.priority,
            &matching::edge_list(&input.graph),
            &mut Scratch::new(),
            cfg.cancel.as_ref(),
        )
    }
    fn prepare<'i>(&self, input: &'i GraphPriorityInstance) -> PreparedMatching<'i> {
        PreparedMatching {
            instance: input,
            edges: matching::edge_list(&input.graph),
        }
    }
    fn solve_prepared(
        &self,
        prepared: &PreparedMatching<'_>,
        scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<bool>> {
        let inst = prepared.instance;
        matching::matching_par_prepared_cancellable(
            &inst.graph,
            &inst.priority,
            &prepared.edges,
            scratch,
            cfg.cancel.as_ref(),
        )
    }
}

/// Greedy maximal matching via deterministic reservations (ablation
/// baseline).
pub struct MatchingReservations;

impl PhaseAlgorithm for MatchingReservations {
    type Input = GraphPriorityInstance;
    type Output = Vec<bool>;
    type Prepared<'i>
        = PreparedMatchingReservations<'i>
    where
        Self: 'i,
        Self::Input: 'i;

    fn name(&self) -> &'static str {
        "matching/reservations"
    }
    fn solve_seq(&self, input: &GraphPriorityInstance) -> Vec<bool> {
        matching::matching_seq(&input.graph, &input.priority)
    }
    fn solve_par(&self, input: &GraphPriorityInstance, cfg: &RunConfig) -> Report<Vec<bool>> {
        matching::matching_reservations_prepared_cancellable(
            &input.graph,
            &input.priority,
            &matching::edge_list(&input.graph),
            &matching::priority_order(&input.priority),
            cfg.cancel.as_ref(),
        )
    }
    fn prepare<'i>(&self, input: &'i GraphPriorityInstance) -> PreparedMatchingReservations<'i> {
        PreparedMatchingReservations {
            instance: input,
            edges: matching::edge_list(&input.graph),
            order: matching::priority_order(&input.priority),
        }
    }
    fn solve_prepared(
        &self,
        prepared: &PreparedMatchingReservations<'_>,
        _scratch: &mut Scratch,
        cfg: &RunConfig,
    ) -> Report<Vec<bool>> {
        let inst = prepared.instance;
        matching::matching_reservations_prepared_cancellable(
            &inst.graph,
            &inst.priority,
            &prepared.edges,
            &prepared.order,
            cfg.cancel.as_ref(),
        )
    }
}

/// 1D Whac-A-Mole (Appendix B): reduction to LIS.
pub struct Whac;

impl PhaseAlgorithm for Whac {
    type Input = [Mole];
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "whac"
    }
    fn solve_seq(&self, moles: &[Mole]) -> u32 {
        whac_seq(moles)
    }
    fn solve_par(&self, moles: &[Mole], cfg: &RunConfig) -> Report<u32> {
        whac_par(moles, cfg)
    }
}

/// 2D-grid Whac-A-Mole (Appendix B closing remark): 4D dominance.
pub struct Whac2d;

impl PhaseAlgorithm for Whac2d {
    type Input = [Mole2d];
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "whac/2d"
    }
    fn solve_seq(&self, moles: &[Mole2d]) -> u32 {
        whac2d_seq(moles)
    }
    fn solve_par(&self, moles: &[Mole2d], cfg: &RunConfig) -> Report<u32> {
        whac2d_par(moles, cfg)
    }
}

/// Longest 3D-dominance chain (the appendix's range-query extension).
pub struct Chain3d;

impl PhaseAlgorithm for Chain3d {
    type Input = [Point3];
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "chain3d"
    }
    fn solve_seq(&self, pts: &[Point3]) -> u32 {
        chain3d_seq(pts)
    }
    fn solve_par(&self, pts: &[Point3], cfg: &RunConfig) -> Report<u32> {
        chain3d_par(pts, cfg)
    }
}

/// Longest 4D-dominance chain (the 2D-grid Whac-A-Mole substrate).
pub struct Chain4d;

impl PhaseAlgorithm for Chain4d {
    type Input = [Point4];
    type Output = u32;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "chain4d"
    }
    fn solve_seq(&self, pts: &[Point4]) -> u32 {
        chain4d_seq(pts)
    }
    fn solve_par(&self, pts: &[Point4], cfg: &RunConfig) -> Report<u32> {
        chain4d_par(pts, cfg)
    }
}

/// Random permutation via deterministic reservations (§5.3 baseline
/// \[10, 64\]): input `(n, target_seed)`; bit-for-bit equal to the
/// sequential Knuth shuffle with the same swap targets.
pub struct RandomPerm;

impl PhaseAlgorithm for RandomPerm {
    type Input = (usize, u64);
    type Output = Vec<u32>;
    phase_parallel::impl_prepared_by_borrow!();
    fn name(&self) -> &'static str {
        "random-perm"
    }
    fn solve_seq(&self, &(n, seed): &Self::Input) -> Vec<u32> {
        random_perm::knuth_shuffle_seq(n, &random_perm::swap_targets(n, seed))
    }
    fn solve_par(&self, &(n, seed): &Self::Input, cfg: &RunConfig) -> Report<Vec<u32>> {
        // The shuffle's randomness comes from the *instance* seed, but
        // the query's deadline must still apply: rebuild the seeded
        // config and carry the caller's cancel token across.
        let mut inner = RunConfig::seeded(seed);
        inner.cancel = cfg.cancel.clone();
        random_perm::random_permutation_reservations(n, &inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phase_parallel::Solver;
    use pp_graph::gen;
    use pp_parlay::shuffle::random_priorities;

    #[test]
    fn solver_drives_lis_family() {
        let solver = Solver::new(Lis).with_config(RunConfig::seeded(3));
        let report = solver.solve_checked(&[4i64, 7, 3, 2, 8, 1, 6, 5]);
        assert_eq!(report.output, 3);
        assert_eq!(solver.algorithm().name(), "lis");
    }

    #[test]
    fn solver_drives_graph_families() {
        let g = gen::uniform(200, 800, 1);
        let pri = random_priorities(200, 2);
        let input = GraphPriorityInstance::new(g, pri);
        Solver::new(GreedyMis).solve_checked(&input);
        Solver::new(RoundsMis).solve_checked(&input);
        Solver::new(Coloring).solve_checked(&input);
    }

    #[test]
    fn solver_drives_sssp_with_knobs() {
        let g = gen::uniform(150, 700, 5);
        let wg = gen::with_uniform_weights(&g, 1, 500, 6);
        let input = SsspInstance::new(wg, 0);
        let base = Solver::new(DeltaSssp)
            .with_config(RunConfig::new().with_delta(64))
            .solve_checked(&input);
        let rho = Solver::new(RhoSssp)
            .with_config(RunConfig::new().with_rho(16))
            .solve_checked(&input);
        assert_eq!(base.output, rho.output);
    }
}
