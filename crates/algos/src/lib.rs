//! # `pp-algos` — the paper's algorithm suite
//!
//! Every algorithm from *Many Sequential Iterative Algorithms Can Be
//! Parallel and (Nearly) Work-efficient* (SPAA 2022), each with its
//! sequential baseline:
//!
//! | Module | Problem | Paper | Type |
//! |---|---|---|---|
//! | [`activity`] | weighted & unweighted activity selection | §4.1, §5.1 | 1 & 2 |
//! | [`knapsack`] | unlimited knapsack | §4.2 | 1 |
//! | [`huffman`] | Huffman tree construction | §4.3, §6.2 | 1 (relaxed rank) |
//! | [`sssp`] | SSSP: Dijkstra, Bellman-Ford, Δ-stepping (Δ = w*) | §4.3, §6.3 | 1 (relaxed rank) |
//! | [`lis`] | longest increasing subsequence | §5.2, §6.4 | 2 |
//! | [`mis`] | greedy maximal independent set via TAS trees | §5.3 | 2 |
//! | [`coloring`] | greedy (Jones–Plassmann) coloring via TAS trees | §5.3 | 2 |
//! | [`matching`] | greedy maximal matching | §5.3 | 2 |
//! | [`whac`] | Whac-A-Mole DP | Appendix B | 2 |
//! | [`chain3d`] | longest 3D-dominance chain (the appendix's 3D range-query extension) | Appendix B | 2 |
//! | [`random_perm`] | random permutation (Knuth shuffle) via deterministic reservations | §5.3, baseline \[10, 64\] | — |
//!
//! All parallel implementations are deterministic given their seeds and
//! agree exactly with their sequential counterparts (greedy algorithms
//! produce the *same* greedy solution, DP algorithms the same values) —
//! enforced by the test suites in each module and in `tests/`.
//!
//! # The unified API
//!
//! Every family speaks the same calling convention
//! ([`phase_parallel::solver`]): a [`RunConfig`] of knobs in, a
//! [`Report`] (output + unified [`ExecutionStats`]) out — and, for
//! repeated traffic, the prepare/query split: `prepare` builds the
//! family's amortizable instance structure (the SSSP family's w* and
//! minimum out-weights, the graph families' CSR mirrors, TAS-tree leaf
//! counts and edge lists) once, and `solve_prepared` answers each
//! query against it with buffers recycled through a
//! [`phase_parallel::Scratch`] workspace.
//!
//! ```
//! use pp_algos::lis::{lis_par, lis_seq};
//! use pp_algos::RunConfig;
//!
//! // Fig. 1's example sequence: the LIS (e.g. 4 7 8) has length 3.
//! let s: Vec<i64> = vec![4, 7, 3, 2, 8, 1, 6, 5];
//! let report = lis_par(&s, &RunConfig::seeded(42));
//! assert_eq!(report.output, 3);
//! assert_eq!(report.output, lis_seq(&s));
//! // Round-efficiency: one virtual round plus one per rank.
//! assert_eq!(report.stats.rounds, 4);
//! ```
//!
//! The [`registry`] exposes every family behind a single string key for
//! generic dispatch (benches, CLIs, conformance suites), and [`api`]
//! defines the typed [`PhaseAlgorithm`] implementations behind it.
//! Registry cases optionally draw their instances from the string-keyed
//! workload scenarios of `pp-workloads` (power-law graphs, grids,
//! meshes, hub skew, sorted / adversarial-chain / zipf sequences):
//!
//! ```
//! use phase_parallel::RunConfig;
//! use pp_algos::registry::{self, CaseSpec};
//!
//! let entry = registry::lookup("lis").expect("registered");
//! let outcome = entry.run_case(&CaseSpec::new(500, 7), &RunConfig::seeded(7));
//! assert_eq!(outcome.expected_digest, outcome.observed_digest); // sequential-equivalent
//!
//! // The same entry on an adversarial workload, fully string-keyed:
//! let case = CaseSpec::new(500, 7).with_scenario_key("seq/adversarial-chain").unwrap();
//! assert!(registry::run_named("lis", &case, &RunConfig::seeded(7)).unwrap().agrees());
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod activity;
pub mod api;
pub mod chain3d;
pub mod chain4d;
pub mod coloring;
pub mod coloring_orders;
pub mod huffman;
pub mod knapsack;
pub mod lis;
pub mod matching;
pub mod mis;
pub mod random_perm;
pub mod registry;
pub mod serving;
pub mod sssp;
pub mod whac;

pub use phase_parallel::{
    ExecutionStats, PhaseAlgorithm, PivotMode, PrioritySource, Report, RunConfig, Solver,
};
