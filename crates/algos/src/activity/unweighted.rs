//! Unweighted activity selection in `O(n log n)` work and `O(log n)`
//! span whp (Theorem 5.3).
//!
//! With unit weights the DP collapses to `dp[i] = dp[pivot(i)] + 1`
//! (Lemma 5.1), so the dependence graph is a *forest*: each activity
//! points only at its pivot. The rank of each activity is its depth in
//! the pivot forest, computed in parallel without any rounds at all —
//! the paper uses tree contraction; we use pointer jumping
//! (`pp_parlay::list_rank`, substitution documented there).

use super::pivots::latest_start_pivots;
use super::Activity;
use phase_parallel::{deadline_tripped, CancelToken, Report, RunOutcome};
use pp_parlay::list_rank::forest_depths;
use rayon::prelude::*;

/// The rank of every activity (depth in the pivot forest + 1), in end
/// order. `rank(S) = max` of this vector.
pub fn ranks(acts: &[Activity]) -> Vec<u32> {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    let n = acts.len();
    if n == 0 {
        return Vec::new();
    }
    let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
    // Pivot forest: parent = pivot, or self for rank-1 activities.
    let parent: Vec<u32> = latest_start_pivots(acts, &ends)
        .into_par_iter()
        .enumerate()
        .map(|(i, p)| p.unwrap_or(i as u32))
        .collect();
    forest_depths(&parent)
        .into_par_iter()
        .map(|d| d + 1)
        .collect()
}

/// Maximum number of non-overlapping activities (the unweighted
/// optimum): equals the maximum rank.
pub fn max_count_unweighted(acts: &[Activity]) -> u32 {
    ranks(acts).into_iter().max().unwrap_or(0)
}

/// [`max_count_unweighted`] under an optional deadline. The algorithm
/// has no round loop (it is a single pointer-jumping pass), so the
/// poll sits at the phase boundaries: before the pivot-forest build and
/// before the depth computation. A trip yields `0` under
/// `RunOutcome::DeadlineExceeded`.
pub fn max_count_unweighted_cancellable(
    acts: &[Activity],
    cancel: Option<&CancelToken>,
) -> Report<u32> {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    if deadline_tripped(cancel) {
        return Report::plain(0).with_outcome(RunOutcome::DeadlineExceeded);
    }
    let n = acts.len();
    if n == 0 {
        return Report::plain(0);
    }
    let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
    let parent: Vec<u32> = latest_start_pivots(acts, &ends)
        .into_par_iter()
        .enumerate()
        .map(|(i, p)| p.unwrap_or(i as u32))
        .collect();
    if deadline_tripped(cancel) {
        return Report::plain(0).with_outcome(RunOutcome::DeadlineExceeded);
    }
    let best = forest_depths(&parent)
        .into_par_iter()
        .map(|d| d + 1)
        .max()
        .unwrap_or(0);
    Report::plain(best)
}

/// Same ranks as [`ranks`], computed with the `O(n)`-work Euler-tour tree
/// contraction that Theorem 5.3 actually cites
/// (`pp_parlay::tree_contract`) instead of pointer jumping. The ablation
/// bench compares the two; results are identical by construction.
pub fn ranks_tree_contraction(acts: &[Activity]) -> Vec<u32> {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    let n = acts.len();
    if n == 0 {
        return Vec::new();
    }
    let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
    let parent: Vec<u32> = latest_start_pivots(acts, &ends)
        .into_par_iter()
        .enumerate()
        .map(|(i, p)| p.unwrap_or(i as u32))
        .collect();
    pp_parlay::tree_contract::forest_depths_contract(&parent)
        .into_par_iter()
        .map(|d| d + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{max_weight_seq, sort_by_end, Activity};
    use super::*;
    use pp_parlay::rng::Rng;

    #[test]
    fn matches_weighted_dp_with_unit_weights() {
        let mut r = Rng::new(31);
        for trial in 0..20 {
            let n = 500;
            let acts: Vec<Activity> = (0..n)
                .map(|_| {
                    let s = r.range(2000);
                    Activity::new(s, s + 1 + r.range(100), 1)
                })
                .collect();
            let acts = sort_by_end(acts);
            let want = max_weight_seq(&acts);
            assert_eq!(max_count_unweighted(&acts) as u64, want, "trial {trial}");
        }
    }

    #[test]
    fn greedy_earliest_end_agrees() {
        // Classic earliest-end greedy as an independent oracle.
        let mut r = Rng::new(77);
        let acts: Vec<Activity> = (0..1000)
            .map(|_| {
                let s = r.range(5000);
                Activity::new(s, s + 1 + r.range(200), 1)
            })
            .collect();
        let acts = sort_by_end(acts);
        let mut count = 0u32;
        let mut cur_end = 0u64;
        for a in &acts {
            if a.start >= cur_end {
                count += 1;
                cur_end = a.end;
            }
        }
        assert_eq!(max_count_unweighted(&acts), count);
    }

    #[test]
    fn rank_vector_shape() {
        // Three back-to-back chains of length 3 → ranks 1,2,3 each.
        let acts = sort_by_end(vec![
            Activity::new(0, 10, 1),
            Activity::new(10, 20, 1),
            Activity::new(20, 30, 1),
        ]);
        assert_eq!(ranks(&acts), vec![1, 2, 3]);
    }

    #[test]
    fn empty() {
        assert_eq!(max_count_unweighted(&[]), 0);
        assert!(ranks(&[]).is_empty());
        assert!(ranks_tree_contraction(&[]).is_empty());
    }

    #[test]
    fn contraction_matches_pointer_jumping() {
        let mut r = Rng::new(404);
        for n in [1usize, 2, 50, 3000, 40_000] {
            let acts: Vec<Activity> = (0..n)
                .map(|_| {
                    let s = r.range(100_000);
                    Activity::new(s, s + 1 + r.range(500), 1)
                })
                .collect();
            let acts = sort_by_end(acts);
            assert_eq!(ranks_tree_contraction(&acts), ranks(&acts), "n={n}");
        }
    }
}
