//! Type 1 activity selection (Algorithm 2, Theorem 4.2).
//!
//! Each round: find the earliest-end unprocessed activity `x` (augmented
//! min over `T_time`), split out every unprocessed activity starting
//! before `e_x` — by Lemma 4.1 exactly the activities of the current
//! rank — and process them in parallel against `T_DP`.
//!
//! Two interchangeable implementations:
//!
//! * [`max_weight_type1`] — flat arrays (§6.4 engineering): the
//!   unprocessed set in start order is always a *suffix* (each round
//!   removes a prefix of it), so `T_time` degenerates to a cursor plus a
//!   suffix-min sparse table, and `T_DP` is an atomic prefix-max Fenwick
//!   tree over end order.
//! * [`max_weight_type1_pam`] — the literal Algorithm 2 on PA-BSTs
//!   (`pp-pam`), kept as the reference implementation and for the
//!   flat-vs-tree ablation (DESIGN.md §5.3).

use super::Activity;
use phase_parallel::{run_type1_cancellable, CancelToken, Report, Type1Problem};
use pp_pam::{AugTree, MaxAug, MinAug};
use pp_ranges::AtomicFenwickMax;
use rayon::prelude::*;

/// Flat-array Type 1 algorithm. `acts` sorted by end time.
/// The report's `stats.rounds == rank(S)`.
pub fn max_weight_type1(acts: &[Activity]) -> Report<u64> {
    max_weight_type1_cancellable(acts, None)
}

/// [`max_weight_type1`] under an optional deadline: the round loop
/// polls `cancel`; a trip returns the best DP value seen so far under
/// `RunOutcome::DeadlineExceeded`.
pub fn max_weight_type1_cancellable(
    acts: &[Activity],
    cancel: Option<&CancelToken>,
) -> Report<u64> {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    let n = acts.len();
    if n == 0 {
        return Report::plain(0);
    }
    // Activities in start order: ids into `acts`, plus their start times.
    let mut by_start: Vec<u32> = (0..n as u32).collect();
    pp_parlay::par_sort_by_key(&mut by_start, |&i| (acts[i as usize].start, i));
    let starts: Vec<u64> = by_start.iter().map(|&i| acts[i as usize].start).collect();
    // Suffix-min of end time over start order = the T_time augmentation.
    // The unprocessed set in start order is always a suffix, so a plain
    // O(n) suffix-minimum array answers every extraction query (the
    // paper's §6.4 "flat arrays" engineering, one step further than a
    // sparse table).
    let mut suffix_min_end: Vec<u64> = by_start.iter().map(|&i| acts[i as usize].end).collect();
    for i in (0..n.saturating_sub(1)).rev() {
        suffix_min_end[i] = suffix_min_end[i].min(suffix_min_end[i + 1]);
    }
    let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();

    struct Problem<'a> {
        acts: &'a [Activity],
        by_start: Vec<u32>,
        starts: Vec<u64>,
        suffix_min_end: Vec<u64>,
        ends: Vec<u64>,
        head: usize,
        dp: AtomicFenwickMax,
        best: u64,
    }

    impl Type1Problem for Problem<'_> {
        type Output = u64;

        fn extract_frontier(&mut self) -> Vec<u32> {
            let n = self.by_start.len();
            if self.head >= n {
                return Vec::new();
            }
            // Earliest end among unprocessed (the suffix from head).
            let e_x = self.suffix_min_end[self.head];
            // Frontier: unprocessed activities starting strictly before e_x.
            let new_head = self.starts.partition_point(|&s| s < e_x);
            debug_assert!(new_head > self.head, "frontier cannot be empty");
            let frontier = self.by_start[self.head..new_head].to_vec();
            self.head = new_head;
            frontier
        }

        fn process(&mut self, frontier: &[u32]) {
            // Query phase: all reads against the pre-round DP state.
            let dps: Vec<(u32, u64)> = frontier
                .par_iter()
                .map(|&i| {
                    let a = &self.acts[i as usize];
                    let cnt = self.ends.partition_point(|&e| e <= a.start);
                    (i, a.weight + self.dp.prefix_max(cnt))
                })
                .collect();
            // Update phase: publish this round's DP values.
            dps.par_iter().for_each(|&(i, dp)| {
                self.dp.update(i as usize, dp);
            });
            let round_best = dps.par_iter().map(|&(_, dp)| dp).max().unwrap_or(0);
            self.best = self.best.max(round_best);
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    let (best, stats, outcome) = run_type1_cancellable(
        Problem {
            acts,
            by_start,
            starts,
            suffix_min_end,
            ends,
            head: 0,
            dp: AtomicFenwickMax::new(n),
            best: 0,
        },
        cancel,
    );
    Report::new(best, stats).with_outcome(outcome)
}

/// Literal Algorithm 2 on PA-BSTs. `acts` sorted by end time.
pub fn max_weight_type1_pam(acts: &[Activity]) -> Report<u64> {
    max_weight_type1_pam_cancellable(acts, None)
}

/// [`max_weight_type1_pam`] under an optional deadline (same poll
/// semantics as [`max_weight_type1_cancellable`]).
pub fn max_weight_type1_pam_cancellable(
    acts: &[Activity],
    cancel: Option<&CancelToken>,
) -> Report<u64> {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    let n = acts.len();
    if n == 0 {
        return Report::plain(0);
    }
    // T_time: key (start, id) -> end, augmented on minimum end time.
    let t_time: AugTree<(u64, u32), u64, MinAug> = AugTree::build(
        MinAug,
        acts.iter()
            .enumerate()
            .map(|(i, a)| ((a.start, i as u32), a.end))
            .collect(),
    );
    // T_DP: key (end, id) -> dp, augmented on maximum DP value; dp values
    // are inserted as activities finish.
    let t_dp: AugTree<(u64, u32), u64, MaxAug> = AugTree::new(MaxAug);

    struct Problem<'a> {
        acts: &'a [Activity],
        t_time: Option<AugTree<(u64, u32), u64, MinAug>>,
        t_dp: AugTree<(u64, u32), u64, MaxAug>,
        best: u64,
    }

    impl Type1Problem for Problem<'_> {
        type Output = u64;

        fn extract_frontier(&mut self) -> Vec<u32> {
            let t_time = self.t_time.take().expect("tree present");
            if t_time.is_empty() {
                self.t_time = Some(t_time);
                return Vec::new();
            }
            // Earliest end among unprocessed = root augmented value.
            let e_x = t_time.aug();
            // Split out all activities starting strictly before e_x.
            let (frontier_tree, _, rest) = t_time.split_at(&(e_x, 0));
            self.t_time = Some(rest);
            frontier_tree
                .flatten()
                .into_iter()
                .map(|((_, id), _)| id)
                .collect()
        }

        fn process(&mut self, frontier: &[u32]) {
            let dps: Vec<((u64, u32), u64)> = frontier
                .par_iter()
                .map(|&i| {
                    let a = &self.acts[i as usize];
                    // max dp over activities with end <= a.start.
                    let q = self.t_dp.aug_left(&(a.start, u32::MAX));
                    ((a.end, i), a.weight + q)
                })
                .collect();
            self.best = self
                .best
                .max(dps.par_iter().map(|&(_, dp)| dp).max().unwrap_or(0));
            self.t_dp.multi_insert(dps);
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    let (best, stats, outcome) = run_type1_cancellable(
        Problem {
            acts,
            t_time: Some(t_time),
            t_dp,
            best: 0,
        },
        cancel,
    );
    Report::new(best, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::{sort_by_end, Activity};
    use super::*;

    #[test]
    fn chain_of_sequential_activities_has_rank_n() {
        // n back-to-back activities: rank = n, so n rounds.
        let acts = sort_by_end(
            (0..50)
                .map(|i| Activity::new(i * 10, i * 10 + 10, 1))
                .collect(),
        );
        let report = max_weight_type1(&acts);
        assert_eq!(report.output, 50);
        assert_eq!(report.stats.rounds, 50);
        let report2 = max_weight_type1_pam(&acts);
        assert_eq!(report2.output, 50);
        assert_eq!(report2.stats.rounds, 50);
    }

    #[test]
    fn all_overlapping_is_one_round() {
        let acts = sort_by_end((0..100).map(|i| Activity::new(0, 100 + i, 1 + i)).collect());
        let report = max_weight_type1(&acts);
        assert_eq!(report.output, 100); // best single activity
        assert_eq!(report.stats.rounds, 1);
        assert_eq!(report.stats.max_frontier(), 100);
    }
}
