//! Classic sequential DP for weighted activity selection (Eq. (1)),
//! `O(n log n)` with a prefix-max Fenwick tree — the "Classic seq"
//! baseline of Fig. 5.

use super::Activity;
use pp_ranges::FenwickMax;

/// Maximum total weight of non-overlapping activities.
/// `acts` must be sorted by end time ([`super::sort_by_end`]).
pub fn max_weight_seq(acts: &[Activity]) -> u64 {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    let n = acts.len();
    // Positions in end order; prefix over "activities with end <= s_i" is
    // found by binary searching the sorted end array.
    let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
    let mut best_dp = FenwickMax::new(n);
    let mut answer = 0u64;
    for (i, a) in acts.iter().enumerate() {
        // Number of activities ending no later than a.start.
        let cnt = ends.partition_point(|&e| e <= a.start);
        let dp = a.weight + best_dp.prefix_max(cnt);
        best_dp.update(i, dp);
        answer = answer.max(dp);
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::super::{max_weight_brute, sort_by_end, Activity};
    use super::*;

    #[test]
    fn textbook_example() {
        // CLRS-style instance.
        let acts = sort_by_end(vec![
            Activity::new(1, 4, 3),
            Activity::new(3, 5, 2),
            Activity::new(0, 6, 6),
            Activity::new(5, 7, 2),
            Activity::new(3, 9, 6),
            Activity::new(5, 9, 4),
            Activity::new(6, 10, 4),
            Activity::new(8, 11, 3),
        ]);
        assert_eq!(max_weight_seq(&acts), max_weight_brute(&acts));
    }

    #[test]
    fn nested_activities() {
        // A long heavy activity covering many light ones.
        let acts = sort_by_end(vec![
            Activity::new(0, 100, 5),
            Activity::new(1, 2, 1),
            Activity::new(3, 4, 1),
            Activity::new(5, 6, 1),
            Activity::new(7, 8, 1),
            Activity::new(9, 10, 1),
            Activity::new(11, 12, 1),
        ]);
        assert_eq!(max_weight_seq(&acts), 6); // the six light ones
    }
}
