//! Type 2 activity selection (§5.1, Theorem 5.2).
//!
//! Each activity `x` precomputes its **pivot**: the latest-*start*
//! activity among those ending no later than `s_x`. Lemma 5.1 proves
//! `rank(x) = rank(pivot(x)) + 1`, so a wake-up triggered by the pivot's
//! completion always finds `x` ready — the exact-pivot special case of
//! the Type 2 framework (no re-pivoting ever happens, which the stats
//! assert).

use super::pivots::latest_start_pivots;
use super::Activity;
use phase_parallel::{run_type2_cancellable, CancelToken, Report, Type2Problem, WakeResult};
use pp_ranges::AtomicFenwickMax;

/// Type 2 algorithm. `acts` sorted by end time.
/// The report's `stats.failed_wakeups == 0` by Lemma 5.1 and
/// `stats.rounds == rank(S)`.
pub fn max_weight_type2(acts: &[Activity]) -> Report<u64> {
    max_weight_type2_cancellable(acts, None)
}

/// [`max_weight_type2`] under an optional deadline: the wake-up round
/// loop polls `cancel`; a trip returns the best committed DP value
/// under `RunOutcome::DeadlineExceeded`.
pub fn max_weight_type2_cancellable(
    acts: &[Activity],
    cancel: Option<&CancelToken>,
) -> Report<u64> {
    debug_assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
    let n = acts.len();
    if n == 0 {
        return Report::plain(0);
    }
    let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
    // pivot[i] = latest-start activity among ends <= s_i (Lemma 5.1),
    // or None when i has rank 1.
    let pivots = latest_start_pivots(acts, &ends);

    struct Problem<'a> {
        acts: &'a [Activity],
        ends: &'a [u64],
        pivots: Vec<Option<u32>>,
        dp: AtomicFenwickMax,
        best: u64,
    }

    impl Type2Problem for Problem<'_> {
        type Info = u64; // the activity's DP value
        type Output = u64;

        fn initial_pivots(&self) -> Vec<(u32, u32)> {
            self.pivots
                .iter()
                .enumerate()
                .filter_map(|(x, p)| p.map(|p| (p, x as u32)))
                .collect()
        }

        fn initial_frontier(&self) -> Vec<(u32, u64)> {
            // Rank-1 activities: no activity ends before they start.
            self.pivots
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_none())
                .map(|(x, _)| (x as u32, self.acts[x].weight))
                .collect()
        }

        fn try_wake(&self, x: u32) -> WakeResult<u64> {
            // Lemma 5.1: the pivot finishing implies readiness.
            let a = &self.acts[x as usize];
            let cnt = self.ends.partition_point(|&e| e <= a.start);
            WakeResult::Ready(a.weight + self.dp.prefix_max(cnt))
        }

        fn commit(&mut self, ready: &[(u32, u64)]) {
            for &(x, dp) in ready {
                self.dp.update(x as usize, dp);
                self.best = self.best.max(dp);
            }
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    let (best, stats, outcome) = run_type2_cancellable(
        Problem {
            acts,
            ends: &ends,
            pivots,
            dp: AtomicFenwickMax::new(n),
            best: 0,
        },
        cancel,
    );
    Report::new(best, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::{sort_by_end, Activity};
    use super::*;

    #[test]
    fn no_failed_wakeups_ever() {
        // Lemma 5.1 guarantees the pivot is exact.
        let acts = sort_by_end(
            (0..500u64)
                .map(|i| {
                    let s = (i * 7919) % 300;
                    Activity::new(s, s + 1 + (i * 31) % 40, 1 + i % 9)
                })
                .collect(),
        );
        let stats = max_weight_type2(&acts).stats;
        assert_eq!(stats.failed_wakeups, 0);
        // Every non-rank-1 activity is attempted exactly once.
        assert!(stats.wakeup_attempts <= acts.len());
    }

    #[test]
    fn fig2_pivot_structure() {
        // Fig. 2: 7 activities ordered by end time; pivots follow the
        // "latest start among compatible earlier" rule. Build a concrete
        // instance mirroring the figure's rank structure (ranks 1,1,1,2,2,3,3).
        let acts = vec![
            Activity::new(0, 10, 1),  // 1: rank 1
            Activity::new(2, 14, 1),  // 2: rank 1
            Activity::new(4, 16, 1),  // 3: rank 1 (overlaps 1)
            Activity::new(11, 20, 1), // 4: rank 2 (after 1)
            Activity::new(15, 22, 1), // 5: rank 2 (after 2)
            Activity::new(21, 30, 1), // 6: rank 3
            Activity::new(23, 32, 1), // 7: rank 3
        ];
        let acts = sort_by_end(acts);
        let report = max_weight_type2(&acts);
        assert_eq!(report.output, 3);
        assert_eq!(report.stats.rounds, 3);
        assert_eq!(report.stats.frontier_sizes, vec![3, 2, 2]);
    }
}
