//! The §6.1 workload generator: "For each activity, we set a random start
//! time and a length based on a truncated normal distribution. We control
//! the mean and standard deviation of this distribution to control the
//! rank of the input data. The weights are generated uniformly at random
//! in [1, 2^32)."
//!
//! The rank of the generated instance is ≈ `time_range / mean_len`
//! (an activity chain packs about that many non-overlapping intervals),
//! so [`with_target_rank`] inverts that to sweep the rank axis of
//! Fig. 5(a).

use super::{sort_by_end, Activity};
use pp_parlay::rng::{hash64, Rng};
use rayon::prelude::*;

/// Generate `n` activities with uniform starts in `[0, time_range)` and
/// truncated-normal lengths (mean `mean_len`, std `std_len`, min 1).
/// Weights uniform in `[1, 2^32)`. Deterministic in `seed`; output
/// sorted by end time.
pub fn generate(
    n: usize,
    time_range: u64,
    mean_len: f64,
    std_len: f64,
    seed: u64,
) -> Vec<Activity> {
    let acts: Vec<Activity> = (0..n as u64)
        .into_par_iter()
        .map(|i| {
            let mut r = Rng::new(hash64(seed, i));
            let start = r.range(time_range);
            let raw = mean_len + std_len * r.normal();
            let len = raw.clamp(1.0, 1e15) as u64;
            let weight = 1 + r.range((1u64 << 32) - 1);
            Activity::new(start, start + len.max(1), weight)
        })
        .collect();
    sort_by_end(acts)
}

/// Generate an instance whose rank is approximately `target_rank`
/// (the Fig. 5(a) sweep axis). The caller should report the *measured*
/// rank via [`super::ranks`].
pub fn with_target_rank(n: usize, target_rank: u64, seed: u64) -> Vec<Activity> {
    let target_rank = target_rank.max(1);
    // Chains pack ~time_range/mean_len activities; solve for mean_len.
    let time_range: u64 = 1 << 40;
    let mean = (time_range as f64 / target_rank as f64).max(1.0);
    generate(n, time_range, mean, mean * 0.25, seed)
}

#[cfg(test)]
mod tests {
    use super::super::ranks;
    use super::*;

    #[test]
    fn generates_valid_sorted_activities() {
        let acts = generate(5000, 1 << 20, 1000.0, 200.0, 1);
        assert_eq!(acts.len(), 5000);
        assert!(acts.windows(2).all(|w| w[0].end <= w[1].end));
        assert!(acts.iter().all(|a| a.start < a.end && a.weight >= 1));
    }

    #[test]
    fn deterministic() {
        let a = generate(1000, 1 << 20, 500.0, 100.0, 7);
        let b = generate(1000, 1 << 20, 500.0, 100.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn target_rank_is_roughly_hit() {
        for target in [5u64, 50, 500] {
            let acts = with_target_rank(20_000, target, 3);
            let measured = *ranks(&acts).iter().max().unwrap() as u64;
            // Within a factor of 4 either way is plenty for a sweep axis.
            assert!(
                measured >= target / 4 && measured <= target * 4,
                "target {target} measured {measured}"
            );
        }
    }

    #[test]
    fn rank_monotone_in_target() {
        let lo = with_target_rank(10_000, 10, 5);
        let hi = with_target_rank(10_000, 1000, 5);
        let r_lo = *ranks(&lo).iter().max().unwrap();
        let r_hi = *ranks(&hi).iter().max().unwrap();
        assert!(r_hi > r_lo * 5, "lo {r_lo} hi {r_hi}");
    }
}
