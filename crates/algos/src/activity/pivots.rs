//! Shared pivot computation for the Type 2 and unweighted activity
//! algorithms (Lemma 5.1).
//!
//! The pivot of activity `x` is the latest-*start* activity among those
//! ending no later than `s_x`. With activities in end order, this is a
//! prefix arg-max of start time — computed for all activities at once
//! with one parallel inclusive scan (`O(n)` work, polylog span) instead
//! of per-activity range queries.

use super::Activity;
use pp_parlay::monoid::FnMonoid;
use pp_parlay::scan::scan_inclusive;
use rayon::prelude::*;

/// Sentinel for "no pivot" inside the scan monoid.
const NONE: u32 = u32::MAX;

/// For each activity (in end order): the index of its pivot, or `None`
/// for rank-1 activities. `ends` must be the end times in order.
pub fn latest_start_pivots(acts: &[Activity], ends: &[u64]) -> Vec<Option<u32>> {
    let n = acts.len();
    // Prefix arg-max of (start, index) over end order.
    let entries: Vec<(u64, u32)> = acts
        .par_iter()
        .enumerate()
        .map(|(i, a)| (a.start, i as u32))
        .collect();
    let m = FnMonoid::new((0u64, NONE), |a: &(u64, u32), b: &(u64, u32)| {
        if b.1 == NONE {
            *a
        } else if a.1 == NONE || *b >= *a {
            *b
        } else {
            *a
        }
    });
    let prefix_argmax = scan_inclusive(&m, &entries);
    (0..n)
        .into_par_iter()
        .map(|i| {
            // Activities ending no later than s_i form the prefix [0, cnt).
            let cnt = ends.partition_point(|&e| e <= acts[i].start);
            if cnt == 0 {
                None
            } else {
                let (_, j) = prefix_argmax[cnt - 1];
                debug_assert_ne!(j, NONE);
                Some(j)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{sort_by_end, Activity};
    use super::*;
    use pp_parlay::rng::Rng;

    #[test]
    fn pivots_match_naive() {
        let mut r = Rng::new(1);
        for _ in 0..20 {
            let n = 1 + r.range(200) as usize;
            let acts: Vec<Activity> = (0..n)
                .map(|_| {
                    let s = r.range(300);
                    Activity::new(s, s + 1 + r.range(60), 1)
                })
                .collect();
            let acts = sort_by_end(acts);
            let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
            let got = latest_start_pivots(&acts, &ends);
            for i in 0..n {
                let naive = (0..n)
                    .filter(|&j| acts[j].end <= acts[i].start)
                    .max_by_key(|&j| (acts[j].start, j as u32))
                    .map(|j| j as u32);
                assert_eq!(got[i], naive, "activity {i}");
            }
        }
    }

    #[test]
    fn rank1_has_no_pivot() {
        let acts = sort_by_end(vec![
            Activity::new(0, 10, 1),
            Activity::new(5, 15, 1),
            Activity::new(12, 20, 1),
        ]);
        let ends: Vec<u64> = acts.iter().map(|a| a.end).collect();
        let p = latest_start_pivots(&acts, &ends);
        assert_eq!(p[0], None);
        assert_eq!(p[1], None);
        assert_eq!(p[2], Some(0)); // only activity 0 ends by t=12
    }
}
