//! Activity selection (§4.1 Type 1, §5.1 Type 2, Thm 5.3 unweighted).
//!
//! Given activities with start time `s_i`, end time `e_i` and weight
//! `w_i`, select a maximum-weight set of pairwise non-overlapping
//! activities. Two activities are compatible when one ends no later than
//! the other starts (`e_j <= s_i`). The DP over activities sorted by end
//! time is Eq. (1): `dp[i] = w_i + max_{e_j <= s_i} dp[j]`.
//!
//! The **rank** of an activity is the maximum number of non-overlapping
//! activities ending at it (Table 1); the paper's experiments sweep this
//! rank, which our workload generator controls through the mean activity
//! length.

mod pivots;
mod seq;
mod type1;
mod type2;
pub mod unweighted;
pub mod workload;

pub use seq::max_weight_seq;
pub use type1::{
    max_weight_type1, max_weight_type1_cancellable, max_weight_type1_pam,
    max_weight_type1_pam_cancellable,
};
pub use type2::{max_weight_type2, max_weight_type2_cancellable};
pub use unweighted::{
    max_count_unweighted, max_count_unweighted_cancellable, ranks, ranks_tree_contraction,
};

/// One activity: `[start, end)` with a weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Activity {
    /// Start time.
    pub start: u64,
    /// End time (must be strictly greater than `start`).
    pub end: u64,
    /// Weight (≥ 1 for the weighted problem; ignored by the unweighted
    /// algorithms).
    pub weight: u64,
}

impl Activity {
    /// Construct an activity; panics if `start >= end` (zero-length
    /// activities break the frontier argument of Lemma 4.1 and are
    /// rejected everywhere).
    pub fn new(start: u64, end: u64, weight: u64) -> Self {
        assert!(start < end, "activity must have positive length");
        Self { start, end, weight }
    }
}

/// Sort activities by end time (the sequential order of §4.1) and
/// validate them. All algorithms in this module expect this order.
pub fn sort_by_end(mut acts: Vec<Activity>) -> Vec<Activity> {
    for a in &acts {
        assert!(a.start < a.end, "activity must have positive length");
    }
    pp_parlay::par_sort_by_key(&mut acts, |a| (a.end, a.start, a.weight));
    acts
}

/// Brute-force optimum by exhaustive search (tests only; exponential).
pub fn max_weight_brute(acts: &[Activity]) -> u64 {
    assert!(acts.len() <= 20);
    let n = acts.len();
    let mut best = 0u64;
    'outer: for mask in 0..(1u32 << n) {
        let chosen: Vec<&Activity> = (0..n)
            .filter(|i| mask >> i & 1 == 1)
            .map(|i| &acts[i])
            .collect();
        for i in 0..chosen.len() {
            for j in i + 1..chosen.len() {
                let (a, b) = (chosen[i], chosen[j]);
                let compatible = a.end <= b.start || b.end <= a.start;
                if !compatible {
                    continue 'outer;
                }
            }
        }
        best = best.max(chosen.iter().map(|a| a.weight).sum());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;

    pub(crate) fn random_activities(
        n: usize,
        time_range: u64,
        max_len: u64,
        seed: u64,
    ) -> Vec<Activity> {
        let mut r = Rng::new(seed);
        (0..n)
            .map(|_| {
                let s = r.range(time_range);
                let len = 1 + r.range(max_len);
                Activity::new(s, s + len, 1 + r.range(100))
            })
            .collect()
    }

    #[test]
    fn all_algorithms_agree_small() {
        for seed in 0..30 {
            let acts = sort_by_end(random_activities(12, 50, 10, seed));
            let want = max_weight_brute(&acts);
            assert_eq!(max_weight_seq(&acts), want, "seq seed={seed}");
            assert_eq!(max_weight_type1(&acts).output, want, "type1 seed={seed}");
            assert_eq!(
                max_weight_type1_pam(&acts).output,
                want,
                "type1_pam seed={seed}"
            );
            assert_eq!(max_weight_type2(&acts).output, want, "type2 seed={seed}");
        }
    }

    #[test]
    fn all_algorithms_agree_large() {
        for (n, range, len) in [
            (5000usize, 10_000u64, 100u64),
            (5000, 500, 400),
            (3000, 1_000_000, 3),
        ] {
            let acts = sort_by_end(random_activities(n, range, len, 99));
            let want = max_weight_seq(&acts);
            assert_eq!(max_weight_type1(&acts).output, want, "type1 n={n}");
            assert_eq!(max_weight_type1_pam(&acts).output, want, "type1_pam n={n}");
            assert_eq!(max_weight_type2(&acts).output, want, "type2 n={n}");
        }
    }

    #[test]
    fn rounds_equal_rank() {
        // The engines should run exactly rank(S) rounds (round-efficiency).
        let acts = sort_by_end(random_activities(2000, 1000, 50, 5));
        let rank = *ranks(&acts).iter().max().unwrap() as usize;
        let s1 = max_weight_type1(&acts).stats;
        let s2 = max_weight_type2(&acts).stats;
        assert_eq!(s1.rounds, rank);
        assert_eq!(s2.rounds, rank);
    }

    #[test]
    fn single_and_empty() {
        assert_eq!(max_weight_seq(&[]), 0);
        assert_eq!(max_weight_type1(&[]).output, 0);
        assert_eq!(max_weight_type2(&[]).output, 0);
        let one = vec![Activity::new(0, 5, 7)];
        assert_eq!(max_weight_seq(&one), 7);
        assert_eq!(max_weight_type1(&one).output, 7);
        assert_eq!(max_weight_type1_pam(&one).output, 7);
        assert_eq!(max_weight_type2(&one).output, 7);
    }

    #[test]
    fn touching_endpoints_are_compatible() {
        // e_j <= s_i means back-to-back activities combine.
        let acts = sort_by_end(vec![
            Activity::new(0, 5, 10),
            Activity::new(5, 10, 20),
            Activity::new(10, 15, 30),
        ]);
        assert_eq!(max_weight_seq(&acts), 60);
        assert_eq!(max_weight_type1(&acts).output, 60);
        assert_eq!(max_weight_type2(&acts).output, 60);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn rejects_zero_length() {
        Activity::new(3, 3, 1);
    }
}
