//! Δ-stepping (Meyer & Sanders), the §6.3 experimental vehicle.
//!
//! Distances are settled in increments of Δ: bucket `i` holds vertices
//! with tentative distance in `[iΔ, (i+1)Δ)`; the bucket is drained by
//! inner Bellman-Ford substeps until no vertex in it improves, then the
//! algorithm advances to the next non-empty bucket. **Δ = w\*** makes
//! every substep settle only vertices that cannot depend on each other —
//! the paper's phase-parallel relaxed rank (`rank(v) = ⌈d(v)/w*⌉`,
//! Theorem 4.5) — at the cost of smaller frontiers; the Fig. 6 sweep
//! explores exactly this tradeoff.
//!
//! The inner loop runs on the [`Frontier`] engine: candidate buckets
//! are deduplicated by epoch stamps (no per-substep `sort` + `dedup`),
//! the substep frontier adaptively switches between a sparse vertex
//! list and the dense stamp bitmap, and relaxation is split into
//! edge-balanced packets ([`pp_graph::chunk`]) so a hub vertex cannot
//! serialize a substep. Every buffer — the bucket spine, the frontier
//! engine, the update list, the chunker's prefix arrays — recycles
//! through [`Scratch`], so prepared queries allocate nothing in steady
//! state.

use super::{PreparedSssp, INF};
use phase_parallel::{
    CancelToken, Frontier, FrontierPolicy, Report, RunConfig, RunOutcome, Scratch,
};
use pp_graph::{chunk, Graph};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Δ-stepping from `source` with bucket width `cfg.delta`; when unset,
/// Δ defaults to w* — the paper's phase-parallel relaxed rank
/// (Theorem 4.5). Panics on unweighted graphs with edges.
///
/// The report's `stats.rounds` counts non-empty buckets drained
/// (≈ the relaxed rank of the instance when Δ = w*), with per-bucket
/// vertex-relaxation counts in `frontier_sizes`; named counters:
/// `"substeps"` (inner Bellman-Ford iterations, the span driver),
/// `"relaxations"` (total edge relaxations, the work driver — compare
/// with `m` for work-efficiency), and the frontier engine's
/// `"dense_substeps"` / `"sparse_substeps"` representation split.
pub fn delta_stepping(g: &Graph, source: u32, cfg: &RunConfig) -> Report<Vec<u64>> {
    // Default Δ = w*; an edgeless graph has no w*, and any Δ ≥ 1 works.
    let delta = cfg
        .delta
        .unwrap_or_else(|| g.min_weight().unwrap_or(1).max(1));
    delta_stepping_core(
        g,
        source,
        delta,
        &mut Scratch::new(),
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

/// The per-query half of prepared Δ-stepping: Δ defaults to the
/// precomputed `w_star` (no weight rescan), the source comes from
/// [`RunConfig::source`], and the distance arrays, bucket queue and
/// frontier engine are recycled through `scratch`. Output is identical
/// to [`delta_stepping`] under the same configuration.
pub fn delta_stepping_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Report<Vec<u64>> {
    let delta = cfg.delta.unwrap_or(prepared.w_star);
    delta_stepping_core(
        prepared.graph,
        prepared.source_for(cfg),
        delta,
        scratch,
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

fn delta_stepping_core(
    g: &Graph,
    source: u32,
    delta: u64,
    scratch: &mut Scratch,
    policy: FrontierPolicy,
    cancel: Option<&CancelToken>,
) -> Report<Vec<u64>> {
    assert!(delta >= 1);
    assert!(g.is_weighted() || g.num_edges() == 0);
    let n = g.num_vertices();
    let mut dist = scratch.take_vec::<AtomicU64>("sssp_dist");
    dist.resize_with(n, || AtomicU64::new(INF));
    // Distance at which each vertex was last relaxed (INF = never):
    // avoids re-relaxing a vertex whose distance hasn't improved since.
    let mut last_relaxed = scratch.take_vec::<AtomicU64>("sssp_last_relaxed");
    last_relaxed.resize_with(n, || AtomicU64::new(INF));
    dist[source as usize].store(0, Ordering::Relaxed);

    // Bucket queue: the spine and every bucket's capacity persist in
    // the workspace across queries. `live` tracks the occupied prefix
    // (the spine may be longer, left over from an earlier query).
    let mut buckets = scratch.take_nested::<u32>("delta_buckets");
    if buckets.is_empty() {
        buckets.push(Vec::new());
    }
    buckets[0].push(source);
    let mut live = 1usize;
    let mut stats = phase_parallel::ExecutionStats::default();
    let mut substeps = 0u64;
    let mut relax_count = 0u64;

    // Per-substep state, recycled across substeps *and* (through the
    // workspace) across queries — the bucket loop allocates nothing in
    // steady state. The frontier engine deduplicates each substep's
    // candidates by epoch stamp, replacing the former per-substep
    // `par_sort` + `dedup` pass.
    let mut frontier = Frontier::take(scratch, "sssp_frontier");
    frontier.reset(n);
    frontier.set_policy(policy);
    let mut updated = scratch.take_vec::<(usize, u32)>("delta_updated");
    let mut deg = scratch.take_vec::<u64>("relax_deg");
    let mut prefix = scratch.take_vec::<u64>("relax_prefix");
    let mut bounds = scratch.take_vec::<usize>("relax_bounds");
    let packets = chunk::default_packets();

    let bucket_of = |d: u64| (d / delta) as usize;
    let mut outcome = RunOutcome::Completed;
    let mut i = 0usize;
    'buckets: while i < live {
        let mut bucket_processed = 0usize;
        loop {
            // Cooperative cancellation, polled once per substep — every
            // bucket iteration passes through here before doing work, so
            // a tripped deadline stops the run at substep granularity
            // with all scratch buffers still returned below.
            if super::deadline_tripped(cancel) {
                outcome = RunOutcome::DeadlineExceeded;
                break 'buckets;
            }
            if buckets[i].is_empty() {
                break;
            }
            // Candidates still belonging to bucket i whose distance
            // improved since their last relaxation; the engine drops
            // duplicate bucket entries via its stamps. Admission
            // doubles as the marking pass: an admitted vertex records
            // its substep-start distance in `last_relaxed` right here
            // (idempotent for duplicate candidates — both copies see
            // the same `dist[v]`, and nothing relaxes until the fill
            // completes), so the loop needs no second member sweep.
            {
                let (dist, last_relaxed) = (&dist, &last_relaxed);
                frontier.fill_filtered(&buckets[i], |v| {
                    let d = dist[v as usize].load(Ordering::Relaxed);
                    let admitted = d != INF
                        && bucket_of(d) == i
                        && d < last_relaxed[v as usize].load(Ordering::Relaxed);
                    if admitted {
                        last_relaxed[v as usize].store(d, Ordering::Relaxed);
                    }
                    admitted
                });
            }
            buckets[i].clear();
            if frontier.is_empty() {
                break;
            }
            bucket_processed += frontier.len();
            substeps += 1;
            let dist_ref = &dist;
            let last_ref = &last_relaxed;
            let relax = move |v: u32| {
                let d = last_ref[v as usize].load(Ordering::Relaxed);
                let ws = g.edge_weights(v);
                g.neighbors(v)
                    .iter()
                    .enumerate()
                    .filter_map(move |(e, &u)| {
                        let nd = d + ws[e];
                        // Monotone pre-check: only pay the CAS loop on
                        // edges that actually improve the target.
                        if nd < dist_ref[u as usize].load(Ordering::Relaxed)
                            && nd < dist_ref[u as usize].fetch_min(nd, Ordering::Relaxed)
                        {
                            Some((bucket_of(nd), u))
                        } else {
                            None
                        }
                    })
            };
            updated.clear();
            let mut routed_inline = false;
            match frontier.as_slice() {
                // Sparse: split the member list into packets of ~equal
                // out-edge totals (degree-prefix chunker). A frontier
                // small enough for one packet skips the parallel
                // plumbing entirely: explicit nested loops that relax
                // and route into the bucket queue in one pass.
                Some(members) => {
                    relax_count += chunk::frontier_edge_bounds(
                        g,
                        members,
                        packets,
                        &mut deg,
                        &mut prefix,
                        &mut bounds,
                    );
                    if bounds.len() == 2 {
                        // One packet: relax with the same closure the
                        // parallel arms use (single source of truth for
                        // the pre-check/fetch_min semantics) and route
                        // straight into the bucket queue.
                        routed_inline = true;
                        for &v in members {
                            for (b, u) in relax(v) {
                                if b >= buckets.len() {
                                    buckets.resize_with(b + 1, Vec::new);
                                }
                                if b >= live {
                                    live = b + 1;
                                }
                                buckets[b].push(u);
                            }
                        }
                    } else {
                        updated.par_extend(bounds.par_windows(2).flat_map_iter(|w| {
                            members[w[0]..w[1]].iter().flat_map(move |&v| relax(v))
                        }));
                    }
                }
                // Dense: scan vertex ranges pre-split on the CSR offset
                // array, testing membership by stamp.
                None => {
                    relax_count += frontier.sum_map(|v| g.degree(v) as u64);
                    chunk::vertex_edge_bounds(g, packets, &mut bounds);
                    let fr = &frontier;
                    updated.par_extend(bounds.par_windows(2).flat_map_iter(|w| {
                        (w[0] as u32..w[1] as u32)
                            .filter(|&v| fr.contains(v))
                            .flat_map(relax)
                    }));
                }
            }
            if !routed_inline {
                for &(b, u) in &updated {
                    if b >= buckets.len() {
                        buckets.resize_with(b + 1, Vec::new);
                    }
                    if b >= live {
                        live = b + 1;
                    }
                    buckets[b].push(u);
                }
            }
        }
        if bucket_processed > 0 {
            // One round per non-empty bucket; the frontier size counts
            // every vertex relaxation the bucket's substeps performed.
            stats.record_round(bucket_processed);
        }
        i += 1;
    }
    stats.set_counter("substeps", substeps);
    stats.set_counter("relaxations", relax_count);
    stats.set_counter("sparse_substeps", frontier.sparse_rounds());
    stats.set_counter("dense_substeps", frontier.dense_rounds());
    let out: Vec<u64> = dist.par_iter().map(|d| d.load(Ordering::Relaxed)).collect();
    scratch.put_vec("sssp_dist", dist);
    scratch.put_vec("sssp_last_relaxed", last_relaxed);
    scratch.put_nested("delta_buckets", buckets);
    frontier.release(scratch, "sssp_frontier");
    scratch.put_vec("delta_updated", updated);
    scratch.put_vec("relax_deg", deg);
    scratch.put_vec("relax_prefix", prefix);
    scratch.put_vec("relax_bounds", bounds);
    Report::new(out, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};

    fn with_delta(delta: u64) -> RunConfig {
        RunConfig::new().with_delta(delta)
    }

    #[test]
    fn large_delta_behaves_like_bellman_ford() {
        // Δ ≥ max distance → a single bucket.
        let g = gen::grid2d(10, 10);
        let wg = gen::with_uniform_weights(&g, 1, 10, 1);
        let report = delta_stepping(&wg, 0, &with_delta(1 << 40));
        assert_eq!(report.stats.rounds, 1);
        assert_eq!(report.output[99], super::super::dijkstra(&wg, 0)[99]);
    }

    #[test]
    fn small_delta_many_buckets_fewer_relaxations() {
        let g = gen::uniform(500, 4000, 2);
        let wg = gen::with_uniform_weights(&g, 100, 200, 3);
        // Δ = w*: work-efficient — relaxation count close to m.
        let tight = delta_stepping(&wg, 0, &with_delta(100)).stats;
        // Huge Δ: Bellman-Ford-ish — strictly more relaxations.
        let loose = delta_stepping(&wg, 0, &with_delta(1 << 40)).stats;
        assert!(
            tight.counter("relaxations") <= loose.counter("relaxations"),
            "tight {:?} loose {:?}",
            tight.counter("relaxations"),
            loose.counter("relaxations")
        );
        assert!(tight.rounds > loose.rounds);
    }

    #[test]
    fn default_delta_is_w_star() {
        let g = gen::uniform(200, 900, 5);
        let wg = gen::with_uniform_weights(&g, 7, 60, 6);
        let explicit = delta_stepping(&wg, 0, &with_delta(7));
        let default = delta_stepping(&wg, 0, &RunConfig::new());
        assert_eq!(default.output, explicit.output);
        assert_eq!(default.stats.rounds, explicit.stats.rounds);
    }

    #[test]
    fn prepared_matches_one_shot_and_reuses_buffers() {
        let g = gen::uniform(300, 1200, 8);
        let wg = gen::with_uniform_weights(&g, 1, 500, 9);
        let prepared = PreparedSssp::new(&wg, 0);
        let mut scratch = Scratch::new();
        for (i, &src) in [0u32, 5, 123].iter().enumerate() {
            let cfg = RunConfig::seeded(1).with_source(src);
            let from_prepared = delta_stepping_prepared(&prepared, &mut scratch, &cfg);
            let one_shot = delta_stepping(&wg, src, &RunConfig::seeded(1));
            assert_eq!(from_prepared.output, one_shot.output, "source {src}");
            assert_eq!(from_prepared.stats.rounds, one_shot.stats.rounds);
            if i > 0 {
                // Distance arrays, bucket queue and frontier engine all
                // came back recycled.
                assert!(scratch.reuses() >= 3, "reuses {}", scratch.reuses());
            }
        }
    }

    #[test]
    fn steady_state_queries_allocate_no_scratch() {
        // After one warm-up query, every `take_*` must be served from a
        // parked buffer: the inner loop performs no steady-state scratch
        // allocations (the no-sort/no-alloc acceptance criterion).
        let g = gen::rmat(9, 4096, 4);
        let wg = gen::with_uniform_weights(&g, 1 << 4, 1 << 10, 5);
        let prepared = PreparedSssp::new(&wg, 0);
        let mut scratch = Scratch::new();
        for &src in &[0u32, 17, 99] {
            delta_stepping_prepared(&prepared, &mut scratch, &RunConfig::new().with_source(src));
        }
        let (takes, reuses) = (scratch.takes(), scratch.reuses());
        delta_stepping_prepared(&prepared, &mut scratch, &RunConfig::new().with_source(311));
        assert_eq!(
            scratch.takes() - takes,
            scratch.reuses() - reuses,
            "steady-state query took a buffer it could not reuse"
        );
    }

    #[test]
    fn sparse_and_dense_policies_agree() {
        for seed in 0..3 {
            let g = gen::rmat(8, 2048, seed);
            let wg = gen::with_uniform_weights(&g, 1 << 10, 1 << 16, seed + 7);
            let sparse = delta_stepping(
                &wg,
                0,
                &RunConfig::new().with_frontier(FrontierPolicy::Sparse),
            );
            let dense = delta_stepping(
                &wg,
                0,
                &RunConfig::new().with_frontier(FrontierPolicy::Dense),
            );
            assert_eq!(sparse.output, dense.output, "seed {seed}");
            assert_eq!(sparse.stats.rounds, dense.stats.rounds);
            assert_eq!(
                sparse.stats.counter("substeps"),
                dense.stats.counter("substeps")
            );
            assert_eq!(sparse.stats.counter("dense_substeps"), Some(0));
            assert_eq!(dense.stats.counter("sparse_substeps"), Some(0));
        }
    }

    #[test]
    fn tripped_token_is_typed_and_generous_deadline_is_invisible() {
        let g = gen::uniform(500, 2000, 11);
        let wg = gen::with_uniform_weights(&g, 1, 1000, 12);
        // Pre-tripped token: the run stops at the first substep poll
        // and says so in the outcome instead of panicking or spinning.
        let token = CancelToken::new();
        token.cancel();
        let report = delta_stepping(&wg, 0, &RunConfig::new().with_cancel_token(token));
        assert_eq!(report.outcome, RunOutcome::DeadlineExceeded);
        assert!(!report.is_complete());
        // Generous deadline: polling is observation-free, output and
        // outcome match the no-deadline run exactly.
        let generous = delta_stepping(
            &wg,
            0,
            &RunConfig::new().with_deadline(std::time::Duration::from_secs(3600)),
        );
        let plain = delta_stepping(&wg, 0, &RunConfig::new());
        assert!(generous.is_complete());
        assert_eq!(generous.output, plain.output);
        assert_eq!(generous.stats.rounds, plain.stats.rounds);
    }

    #[test]
    fn triangle_inequality_violating_buckets() {
        // A vertex first reached in a far bucket, later improved into a
        // nearer one: 0→2 direct (weight 100) vs 0→1→2 (30 + 30).
        let mut b = GraphBuilder::new(3).symmetric().weighted();
        b.add_weighted(0, 2, 100);
        b.add_weighted(0, 1, 30);
        b.add_weighted(1, 2, 30);
        let g = b.build();
        let d = delta_stepping(&g, 0, &with_delta(10)).output;
        assert_eq!(d, vec![0, 30, 60]);
    }
}
