//! Δ-stepping (Meyer & Sanders), the §6.3 experimental vehicle.
//!
//! Distances are settled in increments of Δ: bucket `i` holds vertices
//! with tentative distance in `[iΔ, (i+1)Δ)`; the bucket is drained by
//! inner Bellman-Ford substeps until no vertex in it improves, then the
//! algorithm advances to the next non-empty bucket. **Δ = w\*** makes
//! every substep settle only vertices that cannot depend on each other —
//! the paper's phase-parallel relaxed rank (`rank(v) = ⌈d(v)/w*⌉`,
//! Theorem 4.5) — at the cost of smaller frontiers; the Fig. 6 sweep
//! explores exactly this tradeoff.

use super::INF;
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Execution counters for one Δ-stepping run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaStats {
    /// Non-empty buckets drained (≈ relaxed rank of the instance when
    /// Δ = w*).
    pub buckets_processed: usize,
    /// Inner Bellman-Ford substeps across all buckets (the span driver).
    pub substeps: usize,
    /// Total edge relaxations performed (the work driver; compare with
    /// `m` for work-efficiency).
    pub relaxations: usize,
}

/// Δ-stepping from `source` with bucket width `delta`.
/// Panics on unweighted graphs or `delta == 0`.
pub fn delta_stepping(g: &Graph, source: u32, delta: u64) -> (Vec<u64>, DeltaStats) {
    assert!(delta >= 1);
    assert!(g.is_weighted() || g.num_edges() == 0);
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    // Distance at which each vertex was last relaxed (INF = never):
    // avoids re-relaxing a vertex whose distance hasn't improved since.
    let last_relaxed: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut buckets: Vec<Vec<u32>> = vec![vec![source]];
    let mut stats = DeltaStats::default();
    let relax_count = AtomicU64::new(0);

    let bucket_of = |d: u64| (d / delta) as usize;
    let mut i = 0usize;
    while i < buckets.len() {
        let mut processed_any = false;
        loop {
            // Candidates still belonging to bucket i whose distance
            // improved since their last relaxation.
            let mut cand = std::mem::take(&mut buckets[i]);
            pp_parlay::par_sort(&mut cand);
            cand.dedup();
            let frontier: Vec<u32> = cand
                .into_par_iter()
                .filter(|&v| {
                    let d = dist[v as usize].load(Ordering::Relaxed);
                    d != INF
                        && bucket_of(d) == i
                        && d < last_relaxed[v as usize].load(Ordering::Relaxed)
                })
                .collect();
            if frontier.is_empty() {
                break;
            }
            processed_any = true;
            stats.substeps += 1;
            // Mark relaxation distances, then relax all edges.
            frontier.par_iter().for_each(|&v| {
                let d = dist[v as usize].load(Ordering::Relaxed);
                last_relaxed[v as usize].store(d, Ordering::Relaxed);
            });
            let dist_ref = &dist;
            let last_ref = &last_relaxed;
            let relax_ref = &relax_count;
            let updated: Vec<(usize, u32)> = frontier
                .par_iter()
                .flat_map_iter(move |&v| {
                    let d = last_ref[v as usize].load(Ordering::Relaxed);
                    let ws = g.edge_weights(v);
                    relax_ref.fetch_add(ws.len() as u64, Ordering::Relaxed);
                    g.neighbors(v)
                        .iter()
                        .enumerate()
                        .filter_map(move |(e, &u)| {
                            let nd = d + ws[e];
                            if nd < dist_ref[u as usize].fetch_min(nd, Ordering::Relaxed) {
                                Some((bucket_of(nd), u))
                            } else {
                                None
                            }
                        })
                })
                .collect();
            for (b, u) in updated {
                if b >= buckets.len() {
                    buckets.resize_with(b + 1, Vec::new);
                }
                buckets[b].push(u);
            }
        }
        if processed_any {
            stats.buckets_processed += 1;
        }
        i += 1;
    }
    stats.relaxations = relax_count.into_inner() as usize;
    (
        dist.into_iter().map(AtomicU64::into_inner).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};

    #[test]
    fn large_delta_behaves_like_bellman_ford() {
        // Δ ≥ max distance → a single bucket.
        let g = gen::grid2d(10, 10);
        let wg = gen::with_uniform_weights(&g, 1, 10, 1);
        let (d, stats) = delta_stepping(&wg, 0, 1 << 40);
        assert_eq!(stats.buckets_processed, 1);
        assert_eq!(d[99], super::super::dijkstra(&wg, 0)[99]);
    }

    #[test]
    fn small_delta_many_buckets_fewer_relaxations() {
        let g = gen::uniform(500, 4000, 2);
        let wg = gen::with_uniform_weights(&g, 100, 200, 3);
        // Δ = w*: work-efficient — relaxation count close to m.
        let (_, tight) = delta_stepping(&wg, 0, 100);
        // Huge Δ: Bellman-Ford-ish — strictly more relaxations.
        let (_, loose) = delta_stepping(&wg, 0, 1 << 40);
        assert!(
            tight.relaxations <= loose.relaxations,
            "tight {} loose {}",
            tight.relaxations,
            loose.relaxations
        );
        assert!(tight.buckets_processed > loose.buckets_processed);
    }

    #[test]
    fn triangle_inequality_violating_buckets() {
        // A vertex first reached in a far bucket, later improved into a
        // nearer one: 0→2 direct (weight 100) vs 0→1→2 (30 + 30).
        let mut b = GraphBuilder::new(3).symmetric().weighted();
        b.add_weighted(0, 2, 100);
        b.add_weighted(0, 1, 30);
        b.add_weighted(1, 2, 30);
        let g = b.build();
        let (d, _) = delta_stepping(&g, 0, 10);
        assert_eq!(d, vec![0, 30, 60]);
    }
}
