//! Δ-stepping (Meyer & Sanders), the §6.3 experimental vehicle.
//!
//! Distances are settled in increments of Δ: bucket `i` holds vertices
//! with tentative distance in `[iΔ, (i+1)Δ)`; the bucket is drained by
//! inner Bellman-Ford substeps until no vertex in it improves, then the
//! algorithm advances to the next non-empty bucket. **Δ = w\*** makes
//! every substep settle only vertices that cannot depend on each other —
//! the paper's phase-parallel relaxed rank (`rank(v) = ⌈d(v)/w*⌉`,
//! Theorem 4.5) — at the cost of smaller frontiers; the Fig. 6 sweep
//! explores exactly this tradeoff.

use super::{PreparedSssp, INF};
use phase_parallel::{Report, RunConfig, Scratch};
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Δ-stepping from `source` with bucket width `cfg.delta`; when unset,
/// Δ defaults to w* — the paper's phase-parallel relaxed rank
/// (Theorem 4.5). Panics on unweighted graphs with edges.
///
/// The report's `stats.rounds` counts non-empty buckets drained
/// (≈ the relaxed rank of the instance when Δ = w*), with per-bucket
/// vertex-relaxation counts in `frontier_sizes`; named counters:
/// `"substeps"` (inner Bellman-Ford iterations, the span driver) and
/// `"relaxations"` (total edge relaxations, the work driver — compare
/// with `m` for work-efficiency).
pub fn delta_stepping(g: &Graph, source: u32, cfg: &RunConfig) -> Report<Vec<u64>> {
    // Default Δ = w*; an edgeless graph has no w*, and any Δ ≥ 1 works.
    let delta = cfg
        .delta
        .unwrap_or_else(|| g.min_weight().unwrap_or(1).max(1));
    delta_stepping_core(g, source, delta, &mut Scratch::new())
}

/// The per-query half of prepared Δ-stepping: Δ defaults to the
/// precomputed `w_star` (no weight rescan), the source comes from
/// [`RunConfig::source`], and the distance arrays and bucket queue are
/// recycled through `scratch`. Output is identical to
/// [`delta_stepping`] under the same configuration.
pub fn delta_stepping_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Report<Vec<u64>> {
    let delta = cfg.delta.unwrap_or(prepared.w_star);
    delta_stepping_core(prepared.graph, prepared.source_for(cfg), delta, scratch)
}

fn delta_stepping_core(
    g: &Graph,
    source: u32,
    delta: u64,
    scratch: &mut Scratch,
) -> Report<Vec<u64>> {
    assert!(delta >= 1);
    assert!(g.is_weighted() || g.num_edges() == 0);
    let n = g.num_vertices();
    let mut dist = scratch.take_vec::<AtomicU64>("sssp_dist");
    dist.resize_with(n, || AtomicU64::new(INF));
    // Distance at which each vertex was last relaxed (INF = never):
    // avoids re-relaxing a vertex whose distance hasn't improved since.
    let mut last_relaxed = scratch.take_vec::<AtomicU64>("sssp_last_relaxed");
    last_relaxed.resize_with(n, || AtomicU64::new(INF));
    dist[source as usize].store(0, Ordering::Relaxed);

    // Bucket queue: the spine and every bucket's capacity persist in
    // the workspace across queries. `live` tracks the occupied prefix
    // (the spine may be longer, left over from an earlier query).
    let mut buckets = scratch.take_nested::<u32>("delta_buckets");
    if buckets.is_empty() {
        buckets.push(Vec::new());
    }
    buckets[0].push(source);
    let mut live = 1usize;
    let mut stats = phase_parallel::ExecutionStats::default();
    let mut substeps = 0u64;
    let relax_count = AtomicU64::new(0);

    // Per-substep buffers, recycled across substeps *and* (through the
    // workspace) across queries — the bucket loop allocates nothing in
    // steady state.
    let mut frontier = scratch.take_vec::<u32>("delta_frontier");
    let mut updated = scratch.take_vec::<(usize, u32)>("delta_updated");

    let bucket_of = |d: u64| (d / delta) as usize;
    let mut i = 0usize;
    while i < live {
        let mut bucket_processed = 0usize;
        loop {
            // Candidates still belonging to bucket i whose distance
            // improved since their last relaxation.
            {
                let cand = &mut buckets[i];
                pp_parlay::par_sort(cand);
                cand.dedup();
            }
            frontier.clear();
            frontier.par_extend(buckets[i].par_iter().copied().filter(|&v| {
                let d = dist[v as usize].load(Ordering::Relaxed);
                d != INF
                    && bucket_of(d) == i
                    && d < last_relaxed[v as usize].load(Ordering::Relaxed)
            }));
            buckets[i].clear();
            if frontier.is_empty() {
                break;
            }
            bucket_processed += frontier.len();
            substeps += 1;
            // Mark relaxation distances, then relax all edges.
            frontier.par_iter().for_each(|&v| {
                let d = dist[v as usize].load(Ordering::Relaxed);
                last_relaxed[v as usize].store(d, Ordering::Relaxed);
            });
            let dist_ref = &dist;
            let last_ref = &last_relaxed;
            let relax_ref = &relax_count;
            updated.clear();
            updated.par_extend(frontier.par_iter().flat_map_iter(move |&v| {
                let d = last_ref[v as usize].load(Ordering::Relaxed);
                let ws = g.edge_weights(v);
                relax_ref.fetch_add(ws.len() as u64, Ordering::Relaxed);
                g.neighbors(v)
                    .iter()
                    .enumerate()
                    .filter_map(move |(e, &u)| {
                        let nd = d + ws[e];
                        if nd < dist_ref[u as usize].fetch_min(nd, Ordering::Relaxed) {
                            Some((bucket_of(nd), u))
                        } else {
                            None
                        }
                    })
            }));
            for &(b, u) in &updated {
                if b >= buckets.len() {
                    buckets.resize_with(b + 1, Vec::new);
                }
                if b >= live {
                    live = b + 1;
                }
                buckets[b].push(u);
            }
        }
        if bucket_processed > 0 {
            // One round per non-empty bucket; the frontier size counts
            // every vertex relaxation the bucket's substeps performed.
            stats.record_round(bucket_processed);
        }
        i += 1;
    }
    stats.set_counter("substeps", substeps);
    stats.set_counter("relaxations", relax_count.into_inner());
    let out: Vec<u64> = dist.par_iter().map(|d| d.load(Ordering::Relaxed)).collect();
    scratch.put_vec("sssp_dist", dist);
    scratch.put_vec("sssp_last_relaxed", last_relaxed);
    scratch.put_nested("delta_buckets", buckets);
    scratch.put_vec("delta_frontier", frontier);
    scratch.put_vec("delta_updated", updated);
    Report::new(out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::{gen, GraphBuilder};

    fn with_delta(delta: u64) -> RunConfig {
        RunConfig::new().with_delta(delta)
    }

    #[test]
    fn large_delta_behaves_like_bellman_ford() {
        // Δ ≥ max distance → a single bucket.
        let g = gen::grid2d(10, 10);
        let wg = gen::with_uniform_weights(&g, 1, 10, 1);
        let report = delta_stepping(&wg, 0, &with_delta(1 << 40));
        assert_eq!(report.stats.rounds, 1);
        assert_eq!(report.output[99], super::super::dijkstra(&wg, 0)[99]);
    }

    #[test]
    fn small_delta_many_buckets_fewer_relaxations() {
        let g = gen::uniform(500, 4000, 2);
        let wg = gen::with_uniform_weights(&g, 100, 200, 3);
        // Δ = w*: work-efficient — relaxation count close to m.
        let tight = delta_stepping(&wg, 0, &with_delta(100)).stats;
        // Huge Δ: Bellman-Ford-ish — strictly more relaxations.
        let loose = delta_stepping(&wg, 0, &with_delta(1 << 40)).stats;
        assert!(
            tight.counter("relaxations") <= loose.counter("relaxations"),
            "tight {:?} loose {:?}",
            tight.counter("relaxations"),
            loose.counter("relaxations")
        );
        assert!(tight.rounds > loose.rounds);
    }

    #[test]
    fn default_delta_is_w_star() {
        let g = gen::uniform(200, 900, 5);
        let wg = gen::with_uniform_weights(&g, 7, 60, 6);
        let explicit = delta_stepping(&wg, 0, &with_delta(7));
        let default = delta_stepping(&wg, 0, &RunConfig::new());
        assert_eq!(default.output, explicit.output);
        assert_eq!(default.stats.rounds, explicit.stats.rounds);
    }

    #[test]
    fn prepared_matches_one_shot_and_reuses_buffers() {
        let g = gen::uniform(300, 1200, 8);
        let wg = gen::with_uniform_weights(&g, 1, 500, 9);
        let prepared = PreparedSssp::new(&wg, 0);
        let mut scratch = Scratch::new();
        for (i, &src) in [0u32, 5, 123].iter().enumerate() {
            let cfg = RunConfig::seeded(1).with_source(src);
            let from_prepared = delta_stepping_prepared(&prepared, &mut scratch, &cfg);
            let one_shot = delta_stepping(&wg, src, &RunConfig::seeded(1));
            assert_eq!(from_prepared.output, one_shot.output, "source {src}");
            assert_eq!(from_prepared.stats.rounds, one_shot.stats.rounds);
            if i > 0 {
                // Distance arrays and bucket queue came back recycled.
                assert!(scratch.reuses() >= 3, "reuses {}", scratch.reuses());
            }
        }
    }

    #[test]
    fn triangle_inequality_violating_buckets() {
        // A vertex first reached in a far bucket, later improved into a
        // nearer one: 0→2 direct (weight 100) vs 0→1→2 (30 + 30).
        let mut b = GraphBuilder::new(3).symmetric().weighted();
        b.add_weighted(0, 2, 100);
        b.add_weighted(0, 1, 30);
        b.add_weighted(1, 2, 30);
        let g = b.build();
        let d = delta_stepping(&g, 0, &with_delta(10)).output;
        assert_eq!(d, vec![0, 30, 60]);
    }
}
