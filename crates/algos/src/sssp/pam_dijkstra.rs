//! The literal Theorem 4.5 algorithm: phase-parallel Dijkstra with a
//! PA-BST maintaining tentative distances.
//!
//! "Using PA-BST to maintain the distances of all vertices" — the tree
//! holds `(tentative distance, vertex)` for every reached-but-unsettled
//! vertex, augmented implicitly by its minimum key. Each round settles
//! the window `[d_0, ⌈d_0/w*+1⌉·w*)` (a split), relaxes the frontier's
//! edges in parallel, and applies the distance improvements as batch
//! delete+insert — `O(|E| log |V|)` work and `O(rank(V) log |V|)` span,
//! with `rank(V) = d_max / w*`.
//!
//! The array-backed [`super::delta_stepping`] with Δ = w* is the
//! practical equivalent (§6.3 footnote: "almost none of the parallel
//! SSSP implementations uses tree-based structures ... due to their
//! worse cache locality than flat arrays"); both are kept so the
//! flat-vs-tree contrast is measurable here too.

use super::{PreparedSssp, INF};
use phase_parallel::{CancelToken, ExecutionStats, Report, RunConfig, RunOutcome, Scratch};
use pp_graph::Graph;
use pp_pam::{AugTree, NoAug};
use rayon::prelude::*;

/// Phase-parallel Dijkstra on a PA-BST. The report's `stats.rounds`
/// counts settled `w*`-wide windows, with per-window frontier sizes in
/// `frontier_sizes`. Panics on unweighted graphs with edges.
pub fn sssp_pam(g: &Graph, source: u32) -> Report<Vec<u64>> {
    sssp_pam_with(g, source, None)
}

/// [`sssp_pam`] under an optional deadline: the window loop polls
/// `cancel` each round; a trip returns the partial distances (settled
/// windows exact, the rest tentative or [`INF`]) under
/// `RunOutcome::DeadlineExceeded`.
pub fn sssp_pam_with(g: &Graph, source: u32, cancel: Option<&CancelToken>) -> Report<Vec<u64>> {
    let w_star = g.min_weight().unwrap_or(1).max(1);
    sssp_pam_core(g, source, w_star, cancel)
}

/// Per-query prepared PA-BST SSSP: the window width w* comes
/// precomputed from [`PreparedSssp::w_star`] (no per-call weight scan)
/// and the source from [`RunConfig::source`]. Output is identical to
/// [`sssp_pam`].
pub fn sssp_pam_prepared(
    prepared: &PreparedSssp<'_>,
    _scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Report<Vec<u64>> {
    sssp_pam_core(
        prepared.graph,
        prepared.source_for(cfg),
        prepared.w_star,
        cfg.cancel.as_ref(),
    )
}

fn sssp_pam_core(
    g: &Graph,
    source: u32,
    w_star: u64,
    cancel: Option<&CancelToken>,
) -> Report<Vec<u64>> {
    let n = g.num_vertices();
    // The distance array is the output: filled in place and moved into
    // the report (no clone-and-park round trip).
    let mut dist = vec![INF; n];
    dist[source as usize] = 0;
    let mut tree: AugTree<(u64, u32), (), NoAug> = AugTree::new(NoAug);
    tree.insert((0, source), ());
    let mut stats = ExecutionStats::default();
    let mut outcome = RunOutcome::Completed;
    while !tree.is_empty() {
        if super::deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        let &(d0, _) = tree.first().expect("non-empty").0;
        let hi = (d0 / w_star + 1) * w_star;
        // Settle every vertex with tentative distance < hi: relaxations
        // out of the window land at >= d0 + w* >= hi, so nothing inside
        // the window can improve (the relaxed-rank argument of §4.3).
        let (frontier_tree, _, rest) = tree.split_at(&(hi, 0));
        tree = rest;
        let frontier: Vec<(u64, u32)> = frontier_tree
            .flatten()
            .into_iter()
            .map(|(k, ())| k)
            .collect();
        stats.record_round(frontier.len());
        // Relax all frontier edges in parallel; collect improvements.
        let dist_ref = &dist;
        let mut cands: Vec<(u32, u64)> = frontier
            .par_iter()
            .flat_map_iter(move |&(d, v)| {
                let ws = g.edge_weights(v);
                g.neighbors(v)
                    .iter()
                    .enumerate()
                    .filter_map(move |(e, &u)| {
                        let nd = d + ws[e];
                        (nd < dist_ref[u as usize]).then_some((u, nd))
                    })
            })
            .collect();
        // Keep the best improvement per vertex.
        pp_parlay::par_sort(&mut cands);
        cands.dedup_by_key(|&mut (u, _)| u);
        let improved: Vec<(u32, u64, u64)> = cands
            .into_iter()
            .filter(|&(u, nd)| nd < dist[u as usize])
            .map(|(u, nd)| (u, dist[u as usize], nd))
            .collect();
        // Batch-update the tree: delete stale entries, insert new ones.
        let stale: Vec<(u64, u32)> = improved
            .iter()
            .filter(|&&(_, old, _)| old != INF)
            .map(|&(u, old, _)| (old, u))
            .collect();
        tree.multi_delete(stale);
        tree.multi_insert(improved.iter().map(|&(u, _, nd)| ((nd, u), ())).collect());
        for &(u, _, nd) in &improved {
            dist[u as usize] = nd;
        }
    }
    Report::new(dist, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::{delta_stepping, dijkstra};
    use super::*;
    use pp_graph::gen;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::uniform(400, 1600, seed);
            let wg = gen::with_uniform_weights(&g, 10, 500, seed + 9);
            assert_eq!(sssp_pam(&wg, 0).output, dijkstra(&wg, 0), "seed {seed}");
        }
    }

    #[test]
    fn rounds_match_delta_stepping_buckets() {
        // Same windowing: rounds ≈ Δ-stepping's bucket count at Δ = w*.
        let g = gen::grid2d(20, 20);
        let wg = gen::with_uniform_weights(&g, 100, 150, 1);
        let pam = sssp_pam(&wg, 0);
        let delta = delta_stepping(&wg, 0, &phase_parallel::RunConfig::new().with_delta(100));
        assert_eq!(pam.output, delta.output);
        // Both settle w*-wide windows; counts agree up to empty windows.
        let rounds = pam.stats.rounds;
        assert!(rounds >= delta.stats.rounds);
        let d_max = *pam.output.iter().filter(|&&x| x != INF).max().unwrap();
        assert!(rounds as u64 <= d_max / 100 + 2);
    }

    #[test]
    fn single_vertex_and_disconnected() {
        let g = pp_graph::GraphBuilder::new(3).weighted().build();
        let report = sssp_pam(&g, 1);
        assert_eq!(report.output, vec![INF, 0, INF]);
        assert_eq!(report.stats.rounds, 1);
    }
}
