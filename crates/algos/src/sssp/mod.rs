//! Single-source shortest paths (§4.3 relaxed rank; experiments §6.3).
//!
//! The phase-parallel view: the relaxed rank of a vertex is
//! `⌈d(v) / w*⌉` (distances within a `w*` window cannot depend on each
//! other, since every relaxation adds at least the minimum edge weight
//! `w*`), so settling one `w*`-wide distance window per round is
//! round-efficient — and is *conceptually the same as Δ-stepping with
//! Δ = w\** (the paper's observation, tested in Fig. 6).
//!
//! * [`dijkstra`] — the sequential work-efficient baseline.
//! * [`bellman_ford`] — the parallel work-inefficient baseline.
//! * [`delta_stepping`] — bucketed Δ-stepping; `delta = w*` gives the
//!   phase-parallel algorithm of Theorem 4.5.
//! * [`sssp_phase_parallel`] — the Δ = w* instantiation.
//! * [`rho_stepping`] — the count-based stepping of the paper's \[39\],
//!   the implementation family Fig. 6 is measured with.
//! * [`crauser_out`] — Crauser et al.'s OUT-criterion \[31\], the
//!   alternative relaxed rank §4.3 points at.

mod bellman_ford;
mod crauser;
mod delta_stepping;
mod dijkstra;
mod pam_dijkstra;
mod rho_stepping;

pub use bellman_ford::{bellman_ford, bellman_ford_prepared, bellman_ford_with};
pub use crauser::{crauser_out, crauser_out_prepared, crauser_out_with};
pub use delta_stepping::{delta_stepping, delta_stepping_prepared};
pub use dijkstra::{dijkstra, dijkstra_cancellable, dijkstra_prepared};
pub use pam_dijkstra::{sssp_pam, sssp_pam_prepared, sssp_pam_with};
pub use rho_stepping::{rho_stepping, rho_stepping_prepared, DEFAULT_RHO};

use phase_parallel::{CancelToken, Report, RunConfig};
use pp_graph::Graph;
use rayon::prelude::*;

/// Unreachable-distance sentinel.
pub const INF: u64 = u64::MAX;

/// One cancellation poll, shared by every round loop in the family:
/// `None` (no deadline armed) costs a branch, `Some` costs one relaxed
/// atomic load. Polls are observation-free — they never change what a
/// run computes, only whether it keeps going — so happy-path digests
/// are byte-identical with and without a deadline (pinned registry-wide
/// by the serve conformance tests).
pub(crate) fn deadline_tripped(cancel: Option<&CancelToken>) -> bool {
    phase_parallel::deadline_tripped(cancel)
}

/// Relax `members` in edge-balanced packets (degree-prefix chunker,
/// [`pp_graph::chunk`]): everything `relax(v)` yields is appended to
/// `out` — sequentially when the frontier fits one packet, fanned out
/// over `par_windows` packets otherwise. Returns the members' total
/// out-edge count (the family's `"relaxations"` increment).
/// `deg`/`prefix`/`bounds` are the caller's scratch-recycled chunker
/// buffers. Shared by the Bellman-Ford, ρ-stepping and Crauser round
/// loops; Δ-stepping keeps its own dispatch (its single-packet path
/// routes straight into the bucket queue).
pub(crate) fn relax_into_packets<F, I>(
    g: &Graph,
    members: &[u32],
    deg: &mut Vec<u64>,
    prefix: &mut Vec<u64>,
    bounds: &mut Vec<usize>,
    out: &mut Vec<u32>,
    relax: F,
) -> u64
where
    F: Fn(u32) -> I + Sync + Copy,
    I: Iterator<Item = u32>,
{
    let packets = pp_graph::chunk::default_packets();
    let total = pp_graph::chunk::frontier_edge_bounds(g, members, packets, deg, prefix, bounds);
    if bounds.len() == 2 {
        out.extend(members.iter().copied().flat_map(relax));
    } else {
        out.par_extend(
            bounds
                .par_windows(2)
                .flat_map_iter(|w| members[w[0]..w[1]].iter().copied().flat_map(relax)),
        );
    }
    total
}

/// The paper's phase-parallel SSSP: Δ-stepping with Δ = w*
/// (Theorem 4.5). Panics on unweighted or edgeless graphs.
pub fn sssp_phase_parallel(g: &Graph, source: u32) -> Report<Vec<u64>> {
    let w_star = g.min_weight().expect("weighted graph required").max(1);
    delta_stepping(g, source, &RunConfig::new().with_delta(w_star))
}

/// The amortized SSSP instance shared by the whole family: everything
/// that depends on the *graph* alone is computed here once, so each
/// per-source query (`*_prepared`) starts straight at the rounds.
///
/// * `w_star` — the minimum edge weight, Δ-stepping's default bucket
///   width (Theorem 4.5) and the PA-BST algorithm's window width; a
///   one-shot solve rescans all `m` weights for it on every call.
/// * `mow` — per-vertex minimum out-edge weight, the OUT-criterion's
///   settling threshold input (Crauser et al.); again an `O(m)` scan a
///   one-shot [`crauser_out`] repeats per call.
///
/// The query-time source comes from [`RunConfig::source`], falling back
/// to the instance's own `source`.
pub struct PreparedSssp<'g> {
    /// The (borrowed) CSR graph queries run against.
    pub graph: &'g Graph,
    /// Default source when a query does not override it.
    pub source: u32,
    /// Minimum edge weight (1 on edgeless graphs): the phase-parallel
    /// Δ default.
    pub w_star: u64,
    /// Per-vertex minimum out-edge weight ([`INF`] for sinks).
    pub mow: Vec<u64>,
}

impl<'g> PreparedSssp<'g> {
    /// Precompute the family's shared instance structure for `graph`.
    pub fn new(graph: &'g Graph, source: u32) -> Self {
        let n = graph.num_vertices();
        assert!((source as usize) < n, "source {source} out of range ({n})");
        let w_star = graph.min_weight().unwrap_or(1).max(1);
        let mow: Vec<u64> = (0..n as u32)
            .into_par_iter()
            .map(|v| graph.edge_weights(v).iter().copied().min().unwrap_or(INF))
            .collect();
        Self {
            graph,
            source,
            w_star,
            mow,
        }
    }

    /// The source this query runs from: the query's
    /// [`RunConfig::source`] override, or the instance default.
    pub fn source_for(&self, cfg: &RunConfig) -> u32 {
        let s = cfg.source.unwrap_or(self.source);
        let n = self.graph.num_vertices();
        assert!((s as usize) < n, "query source {s} out of range ({n})");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;

    fn check_all_agree(g: &Graph, source: u32) {
        let d1 = dijkstra(g, source);
        let d2 = bellman_ford(g, source);
        assert_eq!(d1, d2, "dijkstra vs bellman-ford");
        for delta in [1u64, 7, 1 << 10, 1 << 20] {
            let d3 = delta_stepping(g, source, &RunConfig::new().with_delta(delta)).output;
            assert_eq!(d1, d3, "dijkstra vs delta={delta}");
        }
        assert_eq!(d1, sssp_phase_parallel(g, source).output);
    }

    #[test]
    fn agree_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::uniform(300, 1200, seed);
            let wg = gen::with_uniform_weights(&g, 1, 1000, seed + 100);
            check_all_agree(&wg, 0);
        }
    }

    #[test]
    fn agree_on_grid() {
        let g = gen::grid2d(20, 30);
        let wg = gen::with_uniform_weights(&g, 5, 50, 3);
        check_all_agree(&wg, 0);
        check_all_agree(&wg, 599);
    }

    #[test]
    fn agree_on_rmat() {
        let g = gen::rmat(9, 4096, 17);
        let wg = gen::with_uniform_weights(&g, 1 << 17, 1 << 23, 18);
        check_all_agree(&wg, 0);
    }

    #[test]
    fn disconnected_vertices_unreachable() {
        // Two components: SSSP from one leaves the other at INF.
        let mut b = pp_graph::GraphBuilder::new(4).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(2, 3, 7);
        let g = b.build();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 5, INF, INF]);
        let d2 = delta_stepping(&g, 0, &RunConfig::new().with_delta(5)).output;
        assert_eq!(d2, d);
        assert_eq!(bellman_ford(&g, 0), d);
    }

    #[test]
    fn rounds_track_relaxed_rank() {
        // A weighted path: distance to the far end = sum of weights; with
        // Δ = w*, the number of buckets processed ≈ dist / w*.
        let n = 50usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric().weighted();
        for i in 0..n - 1 {
            b.add_weighted(i as u32, i as u32 + 1, 10);
        }
        let g = b.build();
        let report = delta_stepping(&g, 0, &RunConfig::new().with_delta(10));
        assert_eq!(report.output[n - 1], 10 * (n as u64 - 1));
        // Relaxed rank = d_max / w* = 49.
        assert_eq!(report.stats.rounds, 49 + 1); // bucket 0 included
    }

    #[test]
    fn single_vertex() {
        let g = pp_graph::GraphBuilder::new(1).weighted().build();
        assert_eq!(dijkstra(&g, 0), vec![0]);
        let d = delta_stepping(&g, 0, &RunConfig::new().with_delta(1)).output;
        assert_eq!(d, vec![0]);
    }
}
