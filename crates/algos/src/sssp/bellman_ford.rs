//! Frontier-based parallel Bellman-Ford: the maximal-parallelism,
//! work-inefficient end of the SSSP spectrum (§6.3 background) — every
//! round relaxes all out-edges of every improved vertex.

use super::{PreparedSssp, INF};
use phase_parallel::{RunConfig, Scratch};
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shortest distances from `source` by round-synchronous relaxation.
pub fn bellman_ford(g: &Graph, source: u32) -> Vec<u64> {
    bellman_ford_core(g, source, &mut Scratch::new())
}

/// Per-query prepared Bellman-Ford: source from [`RunConfig::source`],
/// distance array recycled through `scratch`. Output is identical to
/// [`bellman_ford`].
pub fn bellman_ford_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Vec<u64> {
    bellman_ford_core(prepared.graph, prepared.source_for(cfg), scratch)
}

fn bellman_ford_core(g: &Graph, source: u32, scratch: &mut Scratch) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = scratch.take_vec::<AtomicU64>("sssp_dist");
    dist.resize_with(n, || AtomicU64::new(INF));
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    while !frontier.is_empty() {
        // Relax all frontier edges; collect vertices whose distance
        // improved (dedup below).
        let dist = &dist;
        let mut improved: Vec<u32> = frontier
            .par_iter()
            .flat_map_iter(move |&v| {
                let d = dist[v as usize].load(Ordering::Relaxed);
                let ws = g.edge_weights(v);
                g.neighbors(v)
                    .iter()
                    .enumerate()
                    .filter_map(move |(i, &u)| {
                        let nd = d + ws[i];
                        if nd < dist[u as usize].fetch_min(nd, Ordering::Relaxed) {
                            Some(u)
                        } else {
                            None
                        }
                    })
            })
            .collect();
        pp_parlay::par_sort(&mut improved);
        improved.dedup();
        frontier = improved;
    }
    let out: Vec<u64> = dist.par_iter().map(|d| d.load(Ordering::Relaxed)).collect();
    scratch.put_vec("sssp_dist", dist);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;

    #[test]
    fn matches_hand_computed() {
        let mut b = GraphBuilder::new(4).symmetric().weighted();
        b.add_weighted(0, 1, 1);
        b.add_weighted(1, 2, 1);
        b.add_weighted(2, 3, 1);
        b.add_weighted(0, 3, 10);
        let g = b.build();
        assert_eq!(bellman_ford(&g, 0), vec![0, 1, 2, 3]);
    }
}
