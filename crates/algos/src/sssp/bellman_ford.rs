//! Frontier-based parallel Bellman-Ford: the maximal-parallelism,
//! work-inefficient end of the SSSP spectrum (§6.3 background) — every
//! round relaxes all out-edges of every improved vertex.
//!
//! Runs on the [`Frontier`] engine: improved vertices are deduplicated
//! by epoch stamp instead of a per-round `sort` + `dedup`, the frontier
//! representation adapts sparse↔dense as it grows and shrinks, and
//! relaxation is split into edge-balanced packets.

use super::{PreparedSssp, INF};
use phase_parallel::{
    CancelToken, ExecutionStats, Frontier, FrontierPolicy, Report, RunConfig, RunOutcome, Scratch,
};
use pp_graph::{chunk, Graph};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shortest distances from `source` by round-synchronous relaxation.
pub fn bellman_ford(g: &Graph, source: u32) -> Vec<u64> {
    bellman_ford_core(
        g,
        source,
        &mut Scratch::new(),
        FrontierPolicy::Adaptive,
        None,
    )
    .output
}

/// [`bellman_ford`] honoring the config's [`RunConfig::frontier`]
/// representation pin and deadline — the one-shot entry point the
/// registry drives, so differential sparse/dense testing and
/// cancellation reach this family too. The report's `stats.rounds`
/// counts relaxation rounds with per-round frontier sizes, and
/// `"relaxations"` totals edge relaxations.
pub fn bellman_ford_with(g: &Graph, source: u32, cfg: &RunConfig) -> Report<Vec<u64>> {
    bellman_ford_core(
        g,
        source,
        &mut Scratch::new(),
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

/// Per-query prepared Bellman-Ford: source from [`RunConfig::source`],
/// distance array and frontier engine recycled through `scratch`.
/// Output is identical to [`bellman_ford`].
pub fn bellman_ford_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Report<Vec<u64>> {
    bellman_ford_core(
        prepared.graph,
        prepared.source_for(cfg),
        scratch,
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

fn bellman_ford_core(
    g: &Graph,
    source: u32,
    scratch: &mut Scratch,
    policy: FrontierPolicy,
    cancel: Option<&CancelToken>,
) -> Report<Vec<u64>> {
    let n = g.num_vertices();
    let mut dist = scratch.take_vec::<AtomicU64>("sssp_dist");
    dist.resize_with(n, || AtomicU64::new(INF));
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = Frontier::take(scratch, "sssp_frontier");
    frontier.reset(n);
    frontier.set_policy(policy);
    frontier.insert(source);
    let mut updated = scratch.take_vec::<u32>("bf_updated");
    let mut deg = scratch.take_vec::<u64>("relax_deg");
    let mut prefix = scratch.take_vec::<u64>("relax_prefix");
    let mut bounds = scratch.take_vec::<usize>("relax_bounds");
    let packets = chunk::default_packets();
    let mut stats = ExecutionStats::default();
    let mut relax_count = 0u64;
    let mut outcome = RunOutcome::Completed;

    while !frontier.is_empty() {
        // Cooperative cancellation, polled once per round.
        if super::deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        stats.record_round(frontier.len());
        // Relax all frontier edges in edge-balanced packets; collect
        // improved vertices (duplicates collapse in the engine).
        let dist_ref = &dist;
        let relax = move |v: u32| {
            let d = dist_ref[v as usize].load(Ordering::Relaxed);
            let ws = g.edge_weights(v);
            g.neighbors(v)
                .iter()
                .enumerate()
                .filter_map(move |(e, &u)| {
                    let nd = d + ws[e];
                    // Monotone pre-check: only pay the CAS loop on
                    // edges that actually improve the target.
                    if nd < dist_ref[u as usize].load(Ordering::Relaxed)
                        && nd < dist_ref[u as usize].fetch_min(nd, Ordering::Relaxed)
                    {
                        Some(u)
                    } else {
                        None
                    }
                })
        };
        updated.clear();
        match frontier.as_slice() {
            Some(members) => {
                relax_count += super::relax_into_packets(
                    g,
                    members,
                    &mut deg,
                    &mut prefix,
                    &mut bounds,
                    &mut updated,
                    relax,
                );
            }
            None => {
                relax_count += frontier.sum_map(|v| g.degree(v) as u64);
                chunk::vertex_edge_bounds(g, packets, &mut bounds);
                let fr = &frontier;
                updated.par_extend(bounds.par_windows(2).flat_map_iter(|w| {
                    (w[0] as u32..w[1] as u32)
                        .filter(|&v| fr.contains(v))
                        .flat_map(relax)
                }));
            }
        }
        frontier.fill(&updated);
    }
    stats.set_counter("relaxations", relax_count);
    let out: Vec<u64> = dist.par_iter().map(|d| d.load(Ordering::Relaxed)).collect();
    scratch.put_vec("sssp_dist", dist);
    frontier.release(scratch, "sssp_frontier");
    scratch.put_vec("bf_updated", updated);
    scratch.put_vec("relax_deg", deg);
    scratch.put_vec("relax_prefix", prefix);
    scratch.put_vec("relax_bounds", bounds);
    Report::new(out, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;

    #[test]
    fn matches_hand_computed() {
        let mut b = GraphBuilder::new(4).symmetric().weighted();
        b.add_weighted(0, 1, 1);
        b.add_weighted(1, 2, 1);
        b.add_weighted(2, 3, 1);
        b.add_weighted(0, 3, 10);
        let g = b.build();
        assert_eq!(bellman_ford(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pinned_policies_agree() {
        let g = pp_graph::gen::uniform(400, 1600, 2);
        let wg = pp_graph::gen::with_uniform_weights(&g, 1, 50, 3);
        let mut scratch = Scratch::new();
        let sparse = bellman_ford_core(&wg, 0, &mut scratch, FrontierPolicy::Sparse, None);
        let dense = bellman_ford_core(&wg, 0, &mut scratch, FrontierPolicy::Dense, None);
        assert_eq!(sparse.output, dense.output);
        assert_eq!(sparse.output, bellman_ford(&wg, 0));
    }

    #[test]
    fn tripped_token_yields_typed_outcome() {
        let g = pp_graph::gen::uniform(300, 1200, 4);
        let wg = pp_graph::gen::with_uniform_weights(&g, 1, 50, 5);
        let token = phase_parallel::CancelToken::new();
        token.cancel();
        let report = bellman_ford_with(&wg, 0, &RunConfig::new().with_cancel_token(token));
        assert_eq!(report.outcome, RunOutcome::DeadlineExceeded);
        // Only the source has a distance: the run stopped before round 1.
        assert_eq!(report.output[0], 0);
        assert_eq!(report.stats.rounds, 0);
    }
}
