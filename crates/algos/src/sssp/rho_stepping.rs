//! ρ-stepping: settle the ρ closest unsettled vertices per step.
//!
//! The paper's §4.3/§6.3 discussion places Δ-stepping and ρ-stepping
//! (Dong, Gu, Sun & Zhang, SPAA 2021 — the paper's \[39\], whose
//! implementation the authors use for Fig. 6) on the same
//! work-vs-parallelism tradeoff curve that the relaxed rank formalizes:
//! Δ-stepping widens each round by *distance*, ρ-stepping widens it by
//! *count*. We implement ρ-stepping so the tradeoff can be benchmarked
//! against `delta_stepping` with Δ = w* (the phase-parallel choice).
//!
//! Algorithm: keep a pool of *active* vertices (tentative distance
//! improved since last processed). Each step extracts the ρ active
//! vertices with the smallest tentative distances (all of them if the
//! pool is small), relaxes their out-edges in parallel, and re-activates
//! any vertex whose distance improves — including ones processed before
//! (`ρ = 1` degenerates to Dijkstra without a decrease-key, `ρ = ∞` to
//! Bellman-Ford). Like Δ-stepping, extra work appears only when a batch
//! member's distance later improves.

use super::INF;
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counters for a [`rho_stepping`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RhoStats {
    /// Steps executed (each processes ≤ ρ vertices plus ties).
    pub steps: u64,
    /// Total edge relaxations attempted — the work proxy; `/ m` measures
    /// the work overhead vs Dijkstra's exactly-once relaxation.
    pub relaxations: u64,
    /// Total vertices processed across steps (re-processing counts).
    pub processed: u64,
}

/// Shortest distances from `source` by ρ-stepping. Unreachable vertices
/// get [`INF`]. Requires a weighted graph; `rho == 0` is rejected.
pub fn rho_stepping(g: &Graph, source: u32, rho: usize) -> (Vec<u64>, RhoStats) {
    assert!(rho > 0, "rho must be positive");
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    let in_pool: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    in_pool[source as usize].store(true, Ordering::Relaxed);
    let mut pool: Vec<u32> = vec![source];
    let mut stats = RhoStats::default();

    while !pool.is_empty() {
        stats.steps += 1;
        // Pick the batch: the ρ smallest tentative distances in the pool
        // (with ties at the threshold included, so the batch is a
        // deterministic function of the distances).
        let batch: Vec<u32> = if pool.len() <= rho {
            std::mem::take(&mut pool)
        } else {
            let mut ds: Vec<u64> = pool
                .iter()
                .map(|&v| dist[v as usize].load(Ordering::Relaxed))
                .collect();
            let (_, thr, _) = ds.select_nth_unstable(rho - 1);
            let thr = *thr;
            let (batch, rest): (Vec<u32>, Vec<u32>) = pool
                .par_iter()
                .partition(|&&v| dist[v as usize].load(Ordering::Relaxed) <= thr);
            pool = rest;
            batch
        };
        stats.processed += batch.len() as u64;
        batch
            .iter()
            .for_each(|&v| in_pool[v as usize].store(false, Ordering::Relaxed));

        // Relax the batch in parallel; re-activate improved vertices.
        let relaxed: u64 = batch
            .par_iter()
            .map(|&v| {
                let dv = dist[v as usize].load(Ordering::Relaxed);
                let ws = g.edge_weights(v);
                let mut count = 0u64;
                for (i, &u) in g.neighbors(v).iter().enumerate() {
                    count += 1;
                    let nd = dv + ws[i];
                    if dist[u as usize].fetch_min(nd, Ordering::Relaxed) > nd {
                        in_pool[u as usize].store(true, Ordering::Relaxed);
                    }
                }
                count
            })
            .sum();
        stats.relaxations += relaxed;

        // Rebuild the pool without duplicates: each phase *steals* the
        // activation flag (swap to false), so a vertex reachable from
        // several sources — a pool survivor that also improved, a vertex
        // adjacent to two batch members, a batch member re-activated by an
        // in-batch cycle — is collected exactly once. Flags are restored
        // afterwards, re-establishing the invariant "pool = flagged set".
        let mut next: Vec<u32> = pool
            .iter()
            .copied()
            .filter(|&v| in_pool[v as usize].swap(false, Ordering::Relaxed))
            .collect();
        let fresh: Vec<u32> = batch
            .par_iter()
            .flat_map_iter(|&v| g.neighbors(v).iter().copied())
            .filter(|&u| {
                in_pool[u as usize].load(Ordering::Relaxed)
                    && in_pool[u as usize].swap(false, Ordering::Relaxed)
            })
            .collect();
        next.extend_from_slice(&fresh);
        next.extend(
            batch
                .iter()
                .copied()
                .filter(|&v| in_pool[v as usize].swap(false, Ordering::Relaxed)),
        );
        next.iter()
            .for_each(|&v| in_pool[v as usize].store(true, Ordering::Relaxed));
        pool = next;
    }

    (
        dist.into_iter().map(AtomicU64::into_inner).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::super::dijkstra;
    use super::*;
    use pp_graph::{gen, GraphBuilder};

    fn check(g: &Graph, source: u32) {
        let want = dijkstra(g, source);
        for rho in [1usize, 2, 16, 1 << 20] {
            let (got, _) = rho_stepping(g, source, rho);
            assert_eq!(got, want, "rho={rho}");
        }
    }

    #[test]
    fn agrees_with_dijkstra() {
        for seed in 0..4 {
            let g = gen::uniform(250, 1000, seed);
            let wg = gen::with_uniform_weights(&g, 1, 1000, seed + 50);
            check(&wg, 0);
        }
        let g = gen::grid2d(15, 20);
        check(&gen::with_uniform_weights(&g, 5, 50, 9), 7);
    }

    #[test]
    fn disconnected() {
        let mut b = GraphBuilder::new(4).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(2, 3, 7);
        let g = b.build();
        let (d, _) = rho_stepping(&g, 0, 4);
        assert_eq!(d, vec![0, 5, INF, INF]);
    }

    #[test]
    fn rho_one_is_work_efficient() {
        // ρ = 1 processes vertices in exact distance order → every vertex
        // processed once (Dijkstra), m relaxations total.
        let g = gen::uniform(400, 1600, 3);
        let wg = gen::with_uniform_weights(&g, 1, 1_000_000, 4);
        let (d, stats) = rho_stepping(&wg, 0, 1);
        assert_eq!(d, dijkstra(&wg, 0));
        let reachable_edges: u64 = (0..wg.num_vertices() as u32)
            .filter(|&v| d[v as usize] != INF)
            .map(|v| wg.degree(v) as u64)
            .sum();
        assert_eq!(stats.relaxations, reachable_edges);
    }

    #[test]
    fn large_rho_fewer_steps() {
        let g = gen::uniform(2000, 8000, 5);
        let wg = gen::with_uniform_weights(&g, 1, 100, 6);
        let (_, s_small) = rho_stepping(&wg, 0, 4);
        let (_, s_big) = rho_stepping(&wg, 0, 512);
        assert!(s_big.steps < s_small.steps);
        // And more steps ⇒ less re-relaxation (work-parallelism tradeoff).
        assert!(s_big.relaxations >= s_small.relaxations);
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).weighted().build();
        let (d, _) = rho_stepping(&g, 0, 8);
        assert_eq!(d, vec![0]);
    }
}
