//! ρ-stepping: settle the ρ closest unsettled vertices per step.
//!
//! The paper's §4.3/§6.3 discussion places Δ-stepping and ρ-stepping
//! (Dong, Gu, Sun & Zhang, SPAA 2021 — the paper's \[39\], whose
//! implementation the authors use for Fig. 6) on the same
//! work-vs-parallelism tradeoff curve that the relaxed rank formalizes:
//! Δ-stepping widens each round by *distance*, ρ-stepping widens it by
//! *count*. We implement ρ-stepping so the tradeoff can be benchmarked
//! against `delta_stepping` with Δ = w* (the phase-parallel choice).
//!
//! Algorithm: keep a pool of *active* vertices (tentative distance
//! improved since last processed). Each step extracts the ρ active
//! vertices with the smallest tentative distances (all of them if the
//! pool is small), relaxes their out-edges in parallel, and re-activates
//! any vertex whose distance improves — including ones processed before
//! (`ρ = 1` degenerates to Dijkstra without a decrease-key, `ρ = ∞` to
//! Bellman-Ford). Like Δ-stepping, extra work appears only when a batch
//! member's distance later improves.
//!
//! The active pool lives in the [`Frontier`] engine: activations are
//! deduplicated by epoch stamp (replacing the former flag-stealing
//! pool-rebuild dance and its three per-step list allocations), batch
//! extraction is a stamp-`retain`, and batch relaxation runs in
//! edge-balanced packets. All buffers recycle through [`Scratch`].

use super::{PreparedSssp, INF};
use phase_parallel::{
    CancelToken, ExecutionStats, Frontier, FrontierPolicy, Report, RunConfig, RunOutcome, Scratch,
};
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default batch size when [`RunConfig::rho`] is unset — large enough
/// for real parallelism, small enough to stay near distance order.
pub const DEFAULT_RHO: usize = 4096;

/// Shortest distances from `source` by ρ-stepping with batch size
/// `cfg.rho` (default [`DEFAULT_RHO`]). Unreachable vertices get
/// [`INF`]. Requires a weighted graph; `rho == 0` is rejected.
///
/// The report's `stats.rounds` counts steps (each processes ≤ ρ
/// vertices plus ties) with per-step batch sizes in `frontier_sizes`
/// (so `stats.processed()` totals vertex processings, re-processing
/// included); the `"relaxations"` counter is the work proxy (`/ m`
/// measures the overhead vs Dijkstra's exactly-once relaxation).
pub fn rho_stepping(g: &Graph, source: u32, cfg: &RunConfig) -> Report<Vec<u64>> {
    rho_stepping_core(
        g,
        source,
        cfg.rho.unwrap_or(DEFAULT_RHO),
        &mut Scratch::new(),
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

/// Per-query prepared ρ-stepping: source from [`RunConfig::source`],
/// distance array, active pool and batch buffers recycled through
/// `scratch`. Output is identical to [`rho_stepping`] under the same
/// configuration.
pub fn rho_stepping_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Report<Vec<u64>> {
    rho_stepping_core(
        prepared.graph,
        prepared.source_for(cfg),
        cfg.rho.unwrap_or(DEFAULT_RHO),
        scratch,
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

fn rho_stepping_core(
    g: &Graph,
    source: u32,
    rho: usize,
    scratch: &mut Scratch,
    policy: FrontierPolicy,
    cancel: Option<&CancelToken>,
) -> Report<Vec<u64>> {
    assert!(rho > 0, "rho must be positive");
    let n = g.num_vertices();
    let mut dist = scratch.take_vec::<AtomicU64>("sssp_dist");
    dist.resize_with(n, || AtomicU64::new(INF));
    dist[source as usize].store(0, Ordering::Relaxed);
    // The active pool: exactly the vertices whose tentative distance
    // improved since they were last processed.
    let mut active = Frontier::take(scratch, "sssp_frontier");
    active.reset(n);
    active.set_policy(policy);
    active.insert(source);
    let mut batch = scratch.take_vec::<u32>("rho_batch");
    let mut ds = scratch.take_vec::<u64>("rho_ds");
    let mut updated = scratch.take_vec::<u32>("rho_updated");
    let mut deg = scratch.take_vec::<u64>("relax_deg");
    let mut prefix = scratch.take_vec::<u64>("relax_prefix");
    let mut bounds = scratch.take_vec::<usize>("relax_bounds");
    let mut stats = ExecutionStats::default();
    let mut relax_count = 0u64;
    let mut outcome = RunOutcome::Completed;

    while !active.is_empty() {
        // Cooperative cancellation, polled once per step.
        if super::deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        // Pick the batch: the ρ smallest tentative distances in the pool
        // (with ties at the threshold included, so the batch is a
        // deterministic function of the distances).
        batch.clear();
        if active.len() <= rho {
            active.drain_into(&mut batch);
        } else {
            ds.clear();
            let dist_ref = &dist;
            active.map_into(&mut ds, |v| dist_ref[v as usize].load(Ordering::Relaxed));
            let (_, thr, _) = ds.select_nth_unstable(rho - 1);
            let thr = *thr;
            active.extract_retain(&mut batch, |v| {
                dist_ref[v as usize].load(Ordering::Relaxed) <= thr
            });
        }
        stats.record_round(batch.len());

        // Relax the batch in edge-balanced packets; vertices whose
        // distance improves land in `updated` (duplicates collapse when
        // they re-enter the pool).
        let dist_ref = &dist;
        let relax = move |v: u32| {
            let dv = dist_ref[v as usize].load(Ordering::Relaxed);
            let ws = g.edge_weights(v);
            g.neighbors(v)
                .iter()
                .enumerate()
                .filter_map(move |(e, &u)| {
                    let nd = dv + ws[e];
                    // Monotone pre-check: only pay the CAS loop on
                    // edges that actually improve the target.
                    if nd < dist_ref[u as usize].load(Ordering::Relaxed)
                        && dist_ref[u as usize].fetch_min(nd, Ordering::Relaxed) > nd
                    {
                        Some(u)
                    } else {
                        None
                    }
                })
        };
        updated.clear();
        relax_count += super::relax_into_packets(
            g,
            &batch,
            &mut deg,
            &mut prefix,
            &mut bounds,
            &mut updated,
            relax,
        );
        // Re-activate improved vertices: pool survivors stay members,
        // improved batch members and freshly improved neighbors join
        // exactly once each (epoch-stamp dedup).
        active.insert_from(&updated);
    }

    stats.set_counter("relaxations", relax_count);
    let out: Vec<u64> = dist.par_iter().map(|d| d.load(Ordering::Relaxed)).collect();
    scratch.put_vec("sssp_dist", dist);
    active.release(scratch, "sssp_frontier");
    scratch.put_vec("rho_batch", batch);
    scratch.put_vec("rho_ds", ds);
    scratch.put_vec("rho_updated", updated);
    scratch.put_vec("relax_deg", deg);
    scratch.put_vec("relax_prefix", prefix);
    scratch.put_vec("relax_bounds", bounds);
    Report::new(out, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::dijkstra;
    use super::*;
    use pp_graph::{gen, GraphBuilder};

    fn with_rho(rho: usize) -> RunConfig {
        RunConfig::new().with_rho(rho)
    }

    fn check(g: &Graph, source: u32) {
        let want = dijkstra(g, source);
        for rho in [1usize, 2, 16, 1 << 20] {
            let got = rho_stepping(g, source, &with_rho(rho)).output;
            assert_eq!(got, want, "rho={rho}");
        }
    }

    #[test]
    fn agrees_with_dijkstra() {
        for seed in 0..4 {
            let g = gen::uniform(250, 1000, seed);
            let wg = gen::with_uniform_weights(&g, 1, 1000, seed + 50);
            check(&wg, 0);
        }
        let g = gen::grid2d(15, 20);
        check(&gen::with_uniform_weights(&g, 5, 50, 9), 7);
    }

    #[test]
    fn disconnected() {
        let mut b = GraphBuilder::new(4).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(2, 3, 7);
        let g = b.build();
        let d = rho_stepping(&g, 0, &with_rho(4)).output;
        assert_eq!(d, vec![0, 5, INF, INF]);
    }

    #[test]
    fn rho_one_is_work_efficient() {
        // ρ = 1 processes vertices in exact distance order → every vertex
        // processed once (Dijkstra), m relaxations total.
        let g = gen::uniform(400, 1600, 3);
        let wg = gen::with_uniform_weights(&g, 1, 1_000_000, 4);
        let report = rho_stepping(&wg, 0, &with_rho(1));
        let d = &report.output;
        assert_eq!(*d, dijkstra(&wg, 0));
        let reachable_edges: u64 = (0..wg.num_vertices() as u32)
            .filter(|&v| d[v as usize] != INF)
            .map(|v| wg.degree(v) as u64)
            .sum();
        assert_eq!(report.stats.counter("relaxations"), Some(reachable_edges));
    }

    #[test]
    fn large_rho_fewer_steps() {
        let g = gen::uniform(2000, 8000, 5);
        let wg = gen::with_uniform_weights(&g, 1, 100, 6);
        let s_small = rho_stepping(&wg, 0, &with_rho(4)).stats;
        let s_big = rho_stepping(&wg, 0, &with_rho(512)).stats;
        assert!(s_big.rounds < s_small.rounds);
        // And more steps ⇒ less re-relaxation (work-parallelism tradeoff).
        assert!(s_big.counter("relaxations") >= s_small.counter("relaxations"));
    }

    #[test]
    fn pinned_policies_agree() {
        let g = gen::uniform(800, 3200, 8);
        let wg = gen::with_uniform_weights(&g, 1, 200, 9);
        for rho in [4usize, 64] {
            let sparse = rho_stepping(&wg, 0, &with_rho(rho).with_frontier(FrontierPolicy::Sparse));
            let dense = rho_stepping(&wg, 0, &with_rho(rho).with_frontier(FrontierPolicy::Dense));
            // Outputs must agree; step counts may legitimately differ
            // (member order differs between representations, and
            // in-batch relaxation order shifts when re-activations
            // happen — the same freedom a real parallel schedule has).
            assert_eq!(sparse.output, dense.output, "rho={rho}");
        }
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).weighted().build();
        assert_eq!(rho_stepping(&g, 0, &with_rho(8)).output, vec![0]);
    }
}
