//! Sequential Dijkstra with a binary heap: the work-efficient baseline
//! (`O(m log n)`), processing vertices in distance order — the
//! sequential iterative algorithm the phase-parallel version
//! parallelizes.

use super::{PreparedSssp, INF};
use phase_parallel::{RunConfig, Scratch};
use pp_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shortest distances from `source`. Unreachable vertices get [`INF`].
pub fn dijkstra(g: &Graph, source: u32) -> Vec<u64> {
    dijkstra_core(g, source, &mut Scratch::new())
}

/// Per-query prepared Dijkstra — the sequential engine for serving
/// point queries from a prepared instance: source from
/// [`RunConfig::source`], heap storage recycled through `scratch`.
/// Output is identical to [`dijkstra`].
pub fn dijkstra_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Vec<u64> {
    dijkstra_core(prepared.graph, prepared.source_for(cfg), scratch)
}

/// Runs Dijkstra drawing the heap's backing storage from `scratch`. The
/// distance array is *moved* into the return value: it is the query's
/// output, so cloning it just to park a copy (as an earlier revision
/// did) would be a redundant `O(n)` copy per query.
fn dijkstra_core(g: &Graph, source: u32, scratch: &mut Scratch) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    // The heap's backing storage round-trips through the workspace
    // (`BinaryHeap::from` on an empty vector is free).
    let mut heap = BinaryHeap::from(scratch.take_vec::<Reverse<(u64, u32)>>("dijkstra_heap"));
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        let ws = g.edge_weights(v);
        for (i, &u) in g.neighbors(v).iter().enumerate() {
            let nd = d + ws[i];
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    scratch.put_vec("dijkstra_heap", heap.into_vec());
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;

    #[test]
    fn small_known_graph() {
        // 0 -5- 1 -2- 2, 0 -9- 2: shortest 0→2 is 7.
        let mut b = GraphBuilder::new(3).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(1, 2, 2);
        b.add_weighted(0, 2, 9);
        let g = b.build();
        assert_eq!(dijkstra(&g, 0), vec![0, 5, 7]);
        assert_eq!(dijkstra(&g, 2), vec![7, 2, 0]);
    }
}
