//! Sequential Dijkstra with a binary heap: the work-efficient baseline
//! (`O(m log n)`), processing vertices in distance order — the
//! sequential iterative algorithm the phase-parallel version
//! parallelizes.

use super::{PreparedSssp, INF};
use phase_parallel::{CancelToken, RunConfig, RunOutcome, Scratch};
use pp_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How many heap pops a cancellable run settles between deadline polls:
/// coarse enough that the poll is invisible in the profile, fine enough
/// that a blown deadline resolves in microseconds.
const POLL_EVERY: u32 = 1024;

/// Shortest distances from `source`. Unreachable vertices get [`INF`].
pub fn dijkstra(g: &Graph, source: u32) -> Vec<u64> {
    dijkstra_core(g, source, &mut Scratch::new(), None).0
}

/// Per-query prepared Dijkstra — the sequential engine for serving
/// point queries from a prepared instance: source from
/// [`RunConfig::source`], heap storage recycled through `scratch`.
/// Output is identical to [`dijkstra`]. The heap loop polls the
/// query's [`RunConfig::cancel`] token every `POLL_EVERY` (1024) settled
/// vertices; a trip returns the partial distance array (settled
/// vertices exact, the rest upper bounds or [`INF`]) under
/// `RunOutcome::DeadlineExceeded`.
pub fn dijkstra_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> (Vec<u64>, RunOutcome) {
    dijkstra_core(
        prepared.graph,
        prepared.source_for(cfg),
        scratch,
        cfg.cancel.as_ref(),
    )
}

/// [`dijkstra`] under an optional deadline (the one-shot counterpart of
/// [`dijkstra_prepared`]).
pub fn dijkstra_cancellable(
    g: &Graph,
    source: u32,
    cancel: Option<&CancelToken>,
) -> (Vec<u64>, RunOutcome) {
    dijkstra_core(g, source, &mut Scratch::new(), cancel)
}

/// Runs Dijkstra drawing the heap's backing storage from `scratch`. The
/// distance array is *moved* into the return value: it is the query's
/// output, so cloning it just to park a copy (as an earlier revision
/// did) would be a redundant `O(n)` copy per query.
fn dijkstra_core(
    g: &Graph,
    source: u32,
    scratch: &mut Scratch,
    cancel: Option<&CancelToken>,
) -> (Vec<u64>, RunOutcome) {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    // The heap's backing storage round-trips through the workspace
    // (`BinaryHeap::from` on an empty vector is free).
    let mut heap = BinaryHeap::from(scratch.take_vec::<Reverse<(u64, u32)>>("dijkstra_heap"));
    let mut outcome = RunOutcome::Completed;
    let mut since_poll = 0u32;
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        since_poll += 1;
        if since_poll >= POLL_EVERY || since_poll == 1 {
            since_poll = 1;
            if super::deadline_tripped(cancel) {
                outcome = RunOutcome::DeadlineExceeded;
                break;
            }
        }
        if d > dist[v as usize] {
            continue; // stale entry
        }
        let ws = g.edge_weights(v);
        for (i, &u) in g.neighbors(v).iter().enumerate() {
            let nd = d + ws[i];
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    heap.clear();
    scratch.put_vec("dijkstra_heap", heap.into_vec());
    (dist, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;

    #[test]
    fn small_known_graph() {
        // 0 -5- 1 -2- 2, 0 -9- 2: shortest 0→2 is 7.
        let mut b = GraphBuilder::new(3).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(1, 2, 2);
        b.add_weighted(0, 2, 9);
        let g = b.build();
        assert_eq!(dijkstra(&g, 0), vec![0, 5, 7]);
        assert_eq!(dijkstra(&g, 2), vec![7, 2, 0]);
    }
}
