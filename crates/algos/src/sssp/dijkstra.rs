//! Sequential Dijkstra with a binary heap: the work-efficient baseline
//! (`O(m log n)`), processing vertices in distance order — the
//! sequential iterative algorithm the phase-parallel version
//! parallelizes.

use super::INF;
use pp_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Shortest distances from `source`. Unreachable vertices get [`INF`].
pub fn dijkstra(g: &Graph, source: u32) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        let ws = g.edge_weights(v);
        for (i, &u) in g.neighbors(v).iter().enumerate() {
            let nd = d + ws[i];
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;

    #[test]
    fn small_known_graph() {
        // 0 -5- 1 -2- 2, 0 -9- 2: shortest 0→2 is 7.
        let mut b = GraphBuilder::new(3).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(1, 2, 2);
        b.add_weighted(0, 2, 9);
        let g = b.build();
        assert_eq!(dijkstra(&g, 0), vec![0, 5, 7]);
        assert_eq!(dijkstra(&g, 2), vec![7, 2, 0]);
    }
}
