//! Crauser et al.'s OUT-criterion: another relaxed rank for Dijkstra.
//!
//! §4.3 notes that "there can be other ways to define the relaxed rank of
//! the Dijkstra's algorithm \[31, 51\], which enable different bounds to the
//! phase-parallel algorithms". This module implements the classic one —
//! Crauser, Mehlhorn, Meyer & Sanders (MFCS 1998, the paper's \[31\]): a
//! vertex `v` is *safe to settle* as soon as
//!
//! ```text
//! dist(v) ≤ L  where  L = min over unsettled u of ( dist(u) + mow(u) )
//! ```
//!
//! and `mow(u)` is the minimum out-edge weight of `u` — no path through
//! any unsettled vertex can reach `v` more cheaply. Every vertex settled
//! in round `i` under this rule defines a valid relaxed rank
//! `rank(v) = i`: settling is monotone in `dist`, dependences only point
//! from lower to higher rounds, and rank(v) never exceeds `v`'s true rank
//! (hop count on the shortest-path tree). Unlike Δ = w* (which uses the
//! single *global* minimum edge weight), the OUT-criterion adapts to the
//! local weight structure, settling strictly more vertices per round than
//! Δ-stepping's first substep whenever weights are non-uniform.
//!
//! The implementation is round-synchronous and work-efficient in the same
//! sense as Dijkstra: each vertex settles exactly once and each edge is
//! relaxed exactly once (plus an `O(active)` scan per round). The active
//! set lives in the [`Frontier`] engine (threshold scan, batch
//! extraction and compaction run against its stamps — no per-round list
//! reallocations) and settled batches relax in edge-balanced packets.

use super::{PreparedSssp, INF};
use phase_parallel::{
    CancelToken, ExecutionStats, Frontier, FrontierPolicy, Report, RunConfig, RunOutcome, Scratch,
};
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shortest distances from `source` using the OUT-criterion relaxed rank.
/// Unreachable vertices get [`INF`]. Requires a weighted graph with
/// positive weights.
///
/// The report's `stats.rounds` equals the maximum OUT-criterion relaxed
/// rank, `stats.max_frontier()` the largest settled batch, and the
/// `"relaxations"` counter the total edge relaxations (work-efficiency
/// check: equals the number of edges out of reachable vertices).
pub fn crauser_out(g: &Graph, source: u32) -> Report<Vec<u64>> {
    crauser_out_with(g, source, &RunConfig::new())
}

/// [`crauser_out`] honoring the config's [`RunConfig::frontier`]
/// representation pin — the one-shot entry point the registry drives,
/// so differential sparse/dense testing reaches this family too.
pub fn crauser_out_with(g: &Graph, source: u32, cfg: &RunConfig) -> Report<Vec<u64>> {
    // mow[v]: minimum out-edge weight (INF for sinks — they constrain
    // nothing, since no path continues through them).
    let mow: Vec<u64> = (0..g.num_vertices() as u32)
        .into_par_iter()
        .map(|v| g.edge_weights(v).iter().copied().min().unwrap_or(INF))
        .collect();
    crauser_out_core(
        g,
        source,
        &mow,
        &mut Scratch::new(),
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

/// Per-query prepared OUT-criterion SSSP: the per-vertex minimum
/// out-edge weights come precomputed from [`PreparedSssp::mow`]
/// (skipping the one-shot version's `O(m)` rescan), the source from
/// [`RunConfig::source`], and the distance array, active set and batch
/// buffers are recycled through `scratch`. Output is identical to
/// [`crauser_out`].
pub fn crauser_out_prepared(
    prepared: &PreparedSssp<'_>,
    scratch: &mut Scratch,
    cfg: &RunConfig,
) -> Report<Vec<u64>> {
    crauser_out_core(
        prepared.graph,
        prepared.source_for(cfg),
        &prepared.mow,
        scratch,
        cfg.frontier,
        cfg.cancel.as_ref(),
    )
}

fn crauser_out_core(
    g: &Graph,
    source: u32,
    mow: &[u64],
    scratch: &mut Scratch,
    policy: FrontierPolicy,
    cancel: Option<&CancelToken>,
) -> Report<Vec<u64>> {
    let n = g.num_vertices();
    debug_assert_eq!(mow.len(), n);
    let mut dist = scratch.take_vec::<AtomicU64>("sssp_dist");
    dist.resize_with(n, || AtomicU64::new(INF));
    dist[source as usize].store(0, Ordering::Relaxed);
    // Active = unsettled with a finite tentative distance. Invariant at
    // the top of each round: the engine holds exactly the finite
    // unsettled vertices, each once.
    let mut active = Frontier::take(scratch, "sssp_frontier");
    active.reset(n);
    active.set_policy(policy);
    active.insert(source);
    let mut batch = scratch.take_vec::<u32>("crauser_batch");
    let mut updated = scratch.take_vec::<u32>("crauser_updated");
    let mut deg = scratch.take_vec::<u64>("relax_deg");
    let mut prefix = scratch.take_vec::<u64>("relax_prefix");
    let mut bounds = scratch.take_vec::<usize>("relax_bounds");
    let mut stats = ExecutionStats::default();
    let mut relax_count = 0u64;
    let mut outcome = RunOutcome::Completed;

    while !active.is_empty() {
        // Cooperative cancellation, polled once per round.
        if super::deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        // The settling threshold L. Positive weights make the global
        // minimum-distance vertex always pass (dist_min < dist_min + mow),
        // so every round settles at least one vertex.
        let dist_ref = &dist;
        let threshold = active
            .min_map(|u| {
                let du = dist_ref[u as usize].load(Ordering::Relaxed);
                du.saturating_add(mow[u as usize])
            })
            .unwrap();
        batch.clear();
        active.extract_retain(&mut batch, |v| {
            dist_ref[v as usize].load(Ordering::Relaxed) <= threshold
        });
        debug_assert!(!batch.is_empty(), "OUT-criterion must make progress");
        stats.record_round(batch.len());

        // Settle the batch: relax each settled vertex's edges once, in
        // edge-balanced packets. Batch members are final (no cheaper
        // path exists), so no in-batch relaxation can improve a batch
        // member. A vertex enters the active set exactly when its
        // distance first becomes finite — `fetch_min` returning INF
        // identifies the unique first reacher, so no dedup is needed
        // (the engine's stamps make it harmless anyway).
        let relax = move |v: u32| {
            let dv = dist_ref[v as usize].load(Ordering::Relaxed);
            let ws = g.edge_weights(v);
            g.neighbors(v)
                .iter()
                .enumerate()
                .filter_map(move |(e, &u)| {
                    let nd = dv + ws[e];
                    // Pre-check: the CAS is only needed to improve the
                    // minimum or to claim the unique first reach of a
                    // still-INF vertex; a non-improving relaxation of
                    // an already-reached vertex skips it.
                    let cur = dist_ref[u as usize].load(Ordering::Relaxed);
                    if (cur == INF || nd < cur)
                        && dist_ref[u as usize].fetch_min(nd, Ordering::Relaxed) == INF
                    {
                        Some(u)
                    } else {
                        None
                    }
                })
        };
        updated.clear();
        relax_count += super::relax_into_packets(
            g,
            &batch,
            &mut deg,
            &mut prefix,
            &mut bounds,
            &mut updated,
            relax,
        );
        active.insert_from(&updated);
    }

    stats.set_counter("relaxations", relax_count);
    let out: Vec<u64> = dist.par_iter().map(|d| d.load(Ordering::Relaxed)).collect();
    scratch.put_vec("sssp_dist", dist);
    active.release(scratch, "sssp_frontier");
    scratch.put_vec("crauser_batch", batch);
    scratch.put_vec("crauser_updated", updated);
    scratch.put_vec("relax_deg", deg);
    scratch.put_vec("relax_prefix", prefix);
    scratch.put_vec("relax_bounds", bounds);
    Report::new(out, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::{dijkstra, sssp_phase_parallel};
    use super::*;
    use pp_graph::{gen, GraphBuilder};

    #[test]
    fn agrees_with_dijkstra() {
        for seed in 0..5 {
            let g = gen::uniform(300, 1200, seed);
            let wg = gen::with_uniform_weights(&g, 1, 1000, seed + 10);
            assert_eq!(crauser_out(&wg, 0).output, dijkstra(&wg, 0), "seed={seed}");
        }
    }

    #[test]
    fn agrees_on_grid_and_rmat() {
        let g = gen::grid2d(18, 22);
        let wg = gen::with_uniform_weights(&g, 3, 60, 2);
        assert_eq!(crauser_out(&wg, 5).output, dijkstra(&wg, 5));

        let g = gen::rmat(9, 4096, 11);
        let wg = gen::with_uniform_weights(&g, 1 << 17, 1 << 23, 12);
        assert_eq!(crauser_out(&wg, 0).output, dijkstra(&wg, 0));
    }

    #[test]
    fn work_efficient_relaxations() {
        // Each reachable vertex's edges are relaxed exactly once.
        let g = gen::uniform(500, 2000, 7);
        let wg = gen::with_uniform_weights(&g, 1, 100, 8);
        let report = crauser_out(&wg, 0);
        let d = &report.output;
        let want: u64 = (0..wg.num_vertices() as u32)
            .filter(|&v| d[v as usize] != INF)
            .map(|v| wg.degree(v) as u64)
            .sum();
        assert_eq!(report.stats.counter("relaxations"), Some(want));
    }

    #[test]
    fn beats_dijkstra_round_count() {
        // On a uniform-weight path, mow = w everywhere, so each round
        // settles every active vertex within one edge of the boundary —
        // but more interestingly, on a star all leaves settle in round 2.
        let g = gen::star(100);
        let wg = gen::with_uniform_weights(&g, 10, 10, 1);
        let report = crauser_out(&wg, 0);
        assert!(report.output[1..].iter().all(|&x| x == 10));
        assert_eq!(report.stats.rounds, 2);
        assert_eq!(report.stats.max_frontier(), 99);
    }

    #[test]
    fn rounds_never_exceed_settled_vertices() {
        let g = gen::uniform(400, 1600, 3);
        let wg = gen::with_uniform_weights(&g, 1, 1 << 20, 4);
        let report = crauser_out(&wg, 0);
        let d = report.output;
        let reachable = d.iter().filter(|&&x| x != INF).count();
        assert!(report.stats.rounds <= reachable);
        // And agrees with the phase-parallel Δ = w* algorithm.
        assert_eq!(d, sssp_phase_parallel(&wg, 0).output);
    }

    #[test]
    fn pinned_policies_agree() {
        let g = gen::rmat(8, 2048, 6);
        let wg = gen::with_uniform_weights(&g, 1, 1 << 12, 7);
        let prepared = PreparedSssp::new(&wg, 0);
        let mut scratch = Scratch::new();
        let sparse = crauser_out_prepared(
            &prepared,
            &mut scratch,
            &RunConfig::new().with_frontier(FrontierPolicy::Sparse),
        );
        let dense = crauser_out_prepared(
            &prepared,
            &mut scratch,
            &RunConfig::new().with_frontier(FrontierPolicy::Dense),
        );
        assert_eq!(sparse.output, dense.output);
        assert_eq!(sparse.stats.rounds, dense.stats.rounds);
    }

    #[test]
    fn disconnected_and_single() {
        let mut b = GraphBuilder::new(4).symmetric().weighted();
        b.add_weighted(0, 1, 5);
        b.add_weighted(2, 3, 7);
        let g = b.build();
        assert_eq!(crauser_out(&g, 0).output, vec![0, 5, INF, INF]);

        let g1 = GraphBuilder::new(1).weighted().build();
        assert_eq!(crauser_out(&g1, 0).output, vec![0]);
    }
}
