//! Luby's classic parallel MIS — the paper's reference point \[57\].
//!
//! §5.3 opens with the line of parallel MIS work that starts at Luby's
//! algorithm: rounds of fresh random values, select every vertex that is
//! a local minimum among its live neighbors, remove the selected and
//! their neighborhoods. `O(m)` work per round, `O(log n)` rounds whp —
//! but the output is *not* the greedy MIS: the random values are redrawn
//! each round, so there is no fixed priority order a sequential greedy
//! could follow. The paper's point (via Blelloch et al. \[13\] and
//! Fischer–Noever \[42\]) is that committing to *one* random priority
//! order gives the same round bound *and* a sequential-equivalent
//! output; this module exists so the benches can show both sides.

use phase_parallel::{deadline_tripped, ExecutionStats, Frontier, Report, RunConfig, RunOutcome};
use pp_graph::Graph;
use pp_parlay::rng::hash64;

/// Luby's MIS, randomized by `cfg.seed`. The result is a maximal
/// independent set, deterministic for a fixed seed, but *not* the
/// greedy MIS of any single priority vector. The report's
/// `stats.rounds` is `O(log n)` whp with per-round winner counts in
/// `frontier_sizes`; the `"edge_checks"` counter totals live-vertex
/// edge scans (work proxy). The live set runs on the [`Frontier`]
/// engine ([`RunConfig::frontier`] pins its representation).
pub fn mis_luby(g: &Graph, cfg: &RunConfig) -> Report<Vec<bool>> {
    let seed = cfg.seed;
    let n = g.num_vertices();
    let mut in_mis = vec![false; n];
    let mut removed = vec![false; n];
    let mut live = Frontier::new();
    live.reset(n);
    live.set_policy(cfg.frontier);
    live.fill_range(n);
    let mut winners: Vec<u32> = Vec::new();
    let mut stats = ExecutionStats::default();
    let mut edge_checks = 0u64;
    let mut round: u64 = 0;
    let mut outcome = RunOutcome::Completed;
    while !live.is_empty() {
        if deadline_tripped(cfg.cancel.as_ref()) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        // Fresh random value per (round, vertex); ties broken by id so
        // the local-minimum rule never deadlocks.
        let val = |v: u32| (hash64(seed ^ round, u64::from(v)), v);
        edge_checks += live.sum_map(|v| g.degree(v) as u64);
        winners.clear();
        // Winners leave the live set as they are found (they get
        // `removed` below, so the retain would drop them anyway).
        {
            let removed = &removed;
            live.extract_retain(&mut winners, |v| {
                g.neighbors(v)
                    .iter()
                    .all(|&u| removed[u as usize] || val(v) < val(u))
            });
        }
        debug_assert!(!winners.is_empty(), "a global minimum always wins");
        stats.record_round(winners.len());
        for &v in &winners {
            in_mis[v as usize] = true;
            removed[v as usize] = true;
        }
        for &v in &winners {
            for &u in g.neighbors(v) {
                removed[u as usize] = true;
            }
        }
        {
            let removed = &removed;
            live.retain(|v| !removed[v as usize]);
        }
        round += 1;
    }
    stats.set_counter("edge_checks", edge_checks);
    stats.set_counter("dense_substeps", live.dense_rounds());
    stats.set_counter("sparse_substeps", live.sparse_rounds());
    Report::new(in_mis, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::super::is_maximal_independent;
    use super::*;
    use pp_graph::gen;

    #[test]
    fn maximal_on_many_graphs() {
        for (g, seed) in [
            (gen::uniform(500, 2000, 1), 10u64),
            (gen::cycle(101), 11),
            (gen::star(64), 12),
            (gen::grid2d(20, 25), 13),
            (gen::rmat(9, 4096, 14), 14),
        ] {
            let report = mis_luby(&g, &RunConfig::seeded(seed));
            assert!(is_maximal_independent(&g, &report.output));
            assert!(report.stats.rounds >= 1);
        }
    }

    #[test]
    fn rounds_logarithmic() {
        let g = gen::uniform(20_000, 80_000, 2);
        let report = mis_luby(&g, &RunConfig::seeded(3));
        assert!(is_maximal_independent(&g, &report.output));
        assert!(report.stats.rounds <= 30, "rounds {}", report.stats.rounds);
    }

    #[test]
    fn complete_graph_one_vertex() {
        let n = 40usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add(u, v);
            }
        }
        let g = b.build();
        let report = mis_luby(&g, &RunConfig::seeded(4));
        assert_eq!(report.output.iter().filter(|&&x| x).count(), 1);
        assert_eq!(report.stats.rounds, 1);
    }

    #[test]
    fn empty_graph_selects_everything() {
        let g = pp_graph::GraphBuilder::new(50).build();
        let report = mis_luby(&g, &RunConfig::seeded(5));
        assert!(report.output.iter().all(|&x| x));
        assert_eq!(report.stats.rounds, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::uniform(300, 1200, 6);
        let cfg = RunConfig::seeded(7);
        assert_eq!(mis_luby(&g, &cfg).output, mis_luby(&g, &cfg).output);
    }
}
