//! Luby's classic parallel MIS — the paper's reference point \[57\].
//!
//! §5.3 opens with the line of parallel MIS work that starts at Luby's
//! algorithm: rounds of fresh random values, select every vertex that is
//! a local minimum among its live neighbors, remove the selected and
//! their neighborhoods. `O(m)` work per round, `O(log n)` rounds whp —
//! but the output is *not* the greedy MIS: the random values are redrawn
//! each round, so there is no fixed priority order a sequential greedy
//! could follow. The paper's point (via Blelloch et al. \[13\] and
//! Fischer–Noever \[42\]) is that committing to *one* random priority
//! order gives the same round bound *and* a sequential-equivalent
//! output; this module exists so the benches can show both sides.

use pp_graph::Graph;
use pp_parlay::rng::hash64;
use rayon::prelude::*;

/// Counters for a [`mis_luby`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LubyStats {
    /// Rounds executed (`O(log n)` whp).
    pub rounds: usize,
    /// Total live-vertex edge scans (work proxy).
    pub edge_checks: u64,
}

/// Luby's MIS. Returns the selection mask and counters. The result is a
/// maximal independent set, deterministic for a fixed `seed`, but *not*
/// the greedy MIS of any single priority vector.
pub fn mis_luby(g: &Graph, seed: u64) -> (Vec<bool>, LubyStats) {
    let n = g.num_vertices();
    let mut in_mis = vec![false; n];
    let mut removed = vec![false; n];
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut stats = LubyStats::default();
    let mut round: u64 = 0;
    while !live.is_empty() {
        stats.rounds += 1;
        // Fresh random value per (round, vertex); ties broken by id so
        // the local-minimum rule never deadlocks.
        let val = |v: u32| (hash64(seed ^ round, u64::from(v)), v);
        let checks: u64 = live.par_iter().map(|&v| g.degree(v) as u64).sum();
        stats.edge_checks += checks;
        let winners: Vec<u32> = live
            .par_iter()
            .copied()
            .filter(|&v| {
                g.neighbors(v)
                    .iter()
                    .all(|&u| removed[u as usize] || val(v) < val(u))
            })
            .collect();
        debug_assert!(!winners.is_empty(), "a global minimum always wins");
        for &v in &winners {
            in_mis[v as usize] = true;
            removed[v as usize] = true;
        }
        for &v in &winners {
            for &u in g.neighbors(v) {
                removed[u as usize] = true;
            }
        }
        live.retain(|&v| !removed[v as usize]);
        round += 1;
    }
    (in_mis, stats)
}

#[cfg(test)]
mod tests {
    use super::super::is_maximal_independent;
    use super::*;
    use pp_graph::gen;

    #[test]
    fn maximal_on_many_graphs() {
        for (g, seed) in [
            (gen::uniform(500, 2000, 1), 10u64),
            (gen::cycle(101), 11),
            (gen::star(64), 12),
            (gen::grid2d(20, 25), 13),
            (gen::rmat(9, 4096, 14), 14),
        ] {
            let (set, stats) = mis_luby(&g, seed);
            assert!(is_maximal_independent(&g, &set));
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn rounds_logarithmic() {
        let g = gen::uniform(20_000, 80_000, 2);
        let (set, stats) = mis_luby(&g, 3);
        assert!(is_maximal_independent(&g, &set));
        assert!(stats.rounds <= 30, "rounds {}", stats.rounds);
    }

    #[test]
    fn complete_graph_one_vertex() {
        let n = 40usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add(u, v);
            }
        }
        let g = b.build();
        let (set, stats) = mis_luby(&g, 4);
        assert_eq!(set.iter().filter(|&&x| x).count(), 1);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn empty_graph_selects_everything() {
        let g = pp_graph::GraphBuilder::new(50).build();
        let (set, stats) = mis_luby(&g, 5);
        assert!(set.iter().all(|&x| x));
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::uniform(300, 1200, 6);
        assert_eq!(mis_luby(&g, 7).0, mis_luby(&g, 7).0);
    }
}
