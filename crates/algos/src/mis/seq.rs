//! Sequential greedy MIS: the iterative algorithm being parallelized.

use pp_graph::Graph;

/// Greedy MIS by priority: vertices are processed from highest to lowest
/// priority; a vertex joins the set iff none of its neighbors has.
/// Returns the selection mask.
pub fn mis_seq(g: &Graph, priority: &[u32]) -> Vec<bool> {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(priority[v as usize]));
    let mut selected = vec![false; n];
    let mut removed = vec![false; n];
    for &v in &order {
        if removed[v as usize] {
            continue;
        }
        selected[v as usize] = true;
        for &u in g.neighbors(v) {
            removed[u as usize] = true;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::GraphBuilder;

    #[test]
    fn path_graph_greedy() {
        // Path 0-1-2 with priorities [3,1,2]: select 0, remove 1, select 2.
        let mut b = GraphBuilder::new(3).symmetric();
        b.add(0, 1);
        b.add(1, 2);
        let g = b.build();
        assert_eq!(mis_seq(&g, &[3, 1, 2]), vec![true, false, true]);
        // Priorities [1,3,2]: select 1, remove 0 and 2.
        assert_eq!(mis_seq(&g, &[1, 3, 2]), vec![false, true, false]);
    }
}
