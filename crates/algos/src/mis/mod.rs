//! Greedy maximal independent set (§5.3, Algorithm 4, Theorem 5.7).
//!
//! The greedy MIS: assign random priorities, process vertices from
//! highest to lowest priority, select a vertex iff no selected neighbor.
//! The greedy output is a *deterministic function of the priorities*, so
//! all three implementations here produce the identical set:
//!
//! * [`mis_seq`] — the sequential greedy.
//! * [`mis_tas`] — the paper's fully asynchronous algorithm: a TAS tree
//!   per vertex over its blocking (higher-priority) neighbors detects
//!   the instant the last blocker resolves, in `O(m)` work and
//!   `O(log n log d_max)` span whp.
//! * [`mis_rounds`] — the round-synchronous deterministic-reservation
//!   baseline the paper improves on (`O(D·m)` work worst case),
//!   kept for the ablation benchmark.
//! * [`mis_luby`] — Luby's classic algorithm \[57\]: same `O(log n)`
//!   round bound, but *not* sequential-equivalent (values are redrawn
//!   every round), the contrast the greedy line of work addresses.

mod luby;
mod rounds;
mod seq;
mod tas;

pub use luby::mis_luby;
pub use rounds::{mis_rounds, mis_rounds_cancellable};
pub use seq::mis_seq;
pub use tas::{
    blocking_mirrors, mis_tas, mis_tas_prepared, mis_tas_prepared_cancellable, BlockingMirrors,
};

use pp_graph::Graph;

/// Check that `set` is an independent set of `g`.
pub fn is_independent(g: &Graph, set: &[bool]) -> bool {
    for v in 0..g.num_vertices() as u32 {
        if set[v as usize] {
            for &u in g.neighbors(v) {
                if set[u as usize] {
                    return false;
                }
            }
        }
    }
    true
}

/// Check that `set` is a *maximal* independent set of `g`.
pub fn is_maximal_independent(g: &Graph, set: &[bool]) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    for v in 0..g.num_vertices() as u32 {
        if !set[v as usize] && !g.neighbors(v).iter().any(|&u| set[u as usize]) {
            return false; // v could be added
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_parlay::shuffle::random_priorities;

    fn check_graph(g: &Graph, seed: u64) {
        let pri = random_priorities(g.num_vertices(), seed);
        let a = mis_seq(g, &pri);
        let b = mis_tas(g, &pri);
        let c = mis_rounds(g, &pri).output;
        assert!(is_maximal_independent(g, &a), "seq not an MIS");
        assert_eq!(a, b, "tas differs from greedy");
        assert_eq!(a, c, "rounds differs from greedy");
    }

    #[test]
    fn agree_on_uniform_graphs() {
        for seed in 0..6 {
            let g = gen::uniform(400, 1600, seed);
            check_graph(&g, seed + 50);
        }
    }

    #[test]
    fn agree_on_structured_graphs() {
        check_graph(&gen::cycle(101), 1);
        check_graph(&gen::star(200), 2);
        check_graph(&gen::grid2d(17, 23), 3);
        check_graph(&gen::rmat(9, 4096, 4), 4);
    }

    #[test]
    fn edgeless_graph_selects_everything() {
        let g = pp_graph::GraphBuilder::new(50).build();
        let pri = random_priorities(50, 1);
        let a = mis_tas(&g, &pri);
        assert!(a.iter().all(|&x| x));
        assert_eq!(mis_seq(&g, &pri), a);
    }

    #[test]
    fn star_selects_center_or_all_leaves() {
        let g = gen::star(100);
        let pri = random_priorities(100, 9);
        let set = mis_tas(&g, &pri);
        if set[0] {
            assert_eq!(set.iter().filter(|&&x| x).count(), 1);
        } else {
            assert_eq!(set.iter().filter(|&&x| x).count(), 99);
        }
    }

    #[test]
    fn fig4_example() {
        // Fig. 4(a): 14 vertices with the given priorities; the numbers
        // ARE the priorities. Build the drawn adjacency (as read from
        // the figure's layout) and check greedy rounds behaviour via the
        // rounds baseline: priorities descending = selection order.
        // We verify the invariant rather than the exact picture: the
        // highest-priority vertex is always selected.
        let g = gen::uniform(14, 30, 77);
        let pri = random_priorities(14, 8);
        let set = mis_seq(&g, &pri);
        let top = (0..14u32).max_by_key(|&v| pri[v as usize]).unwrap();
        assert!(set[top as usize]);
        assert_eq!(mis_tas(&g, &pri), set);
    }
}
