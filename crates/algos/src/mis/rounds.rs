//! Round-synchronous greedy MIS — the deterministic-reservations style
//! baseline (§1, \[10\]): every round re-checks the readiness of *all*
//! undecided vertices, giving `O(D · m)` worst-case work. The paper's
//! TAS-tree algorithm removes exactly this re-checking; the ablation
//! bench compares the two.

use phase_parallel::{deadline_tripped, CancelToken, ExecutionStats, Frontier, Report, RunOutcome};
use pp_graph::Graph;

/// Round-synchronous greedy MIS. Same output as [`super::mis_seq`]. The
/// report's `stats.rounds` equals the dependence-graph depth; the
/// `"edge_checks"` counter totals readiness checks (edge inspections) —
/// the work-inefficiency indicator, compare with `m`. The undecided set
/// lives in the [`Frontier`] engine (dense at the all-vertices start,
/// downgrading to a sparse list as rounds decide vertices), with the
/// representation split reported as `"dense_substeps"` /
/// `"sparse_substeps"`.
pub fn mis_rounds(g: &Graph, priority: &[u32]) -> Report<Vec<bool>> {
    mis_rounds_cancellable(g, priority, None)
}

/// [`mis_rounds`] under an optional deadline: the round loop polls
/// `cancel` at its top; a trip leaves the remaining vertices undecided
/// (reported `false` in the mask) under `RunOutcome::DeadlineExceeded`.
pub fn mis_rounds_cancellable(
    g: &Graph,
    priority: &[u32],
    cancel: Option<&CancelToken>,
) -> Report<Vec<bool>> {
    const UNDECIDED: u8 = 0;
    const SELECTED: u8 = 1;
    const REMOVED: u8 = 2;
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    let mut status = vec![UNDECIDED; n];
    let mut undecided = Frontier::new();
    undecided.reset(n);
    undecided.fill_range(n);
    let mut ready: Vec<u32> = Vec::new();
    let mut stats = ExecutionStats::default();
    let mut edge_checks = 0u64;
    let mut outcome = RunOutcome::Completed;
    while !undecided.is_empty() {
        if deadline_tripped(cancel) {
            outcome = RunOutcome::DeadlineExceeded;
            break;
        }
        edge_checks += undecided.sum_map(|v| g.degree(v) as u64);
        // Ready: every higher-priority neighbor is removed.
        ready.clear();
        // Ready vertices leave the set as they are found (they become
        // SELECTED below, so the status retain would drop them anyway).
        {
            let status = &status;
            undecided.extract_retain(&mut ready, |v| {
                g.neighbors(v).iter().all(|&u| {
                    priority[u as usize] < priority[v as usize] || status[u as usize] == REMOVED
                })
            });
        }
        debug_assert!(!ready.is_empty(), "progress every round");
        stats.record_round(ready.len());
        for &v in &ready {
            status[v as usize] = SELECTED;
        }
        for &v in &ready {
            for &u in g.neighbors(v) {
                if status[u as usize] == UNDECIDED {
                    status[u as usize] = REMOVED;
                }
            }
        }
        {
            let status = &status;
            undecided.retain(|v| status[v as usize] == UNDECIDED);
        }
    }
    stats.set_counter("edge_checks", edge_checks);
    stats.set_counter("dense_substeps", undecided.dense_rounds());
    stats.set_counter("sparse_substeps", undecided.sparse_rounds());
    Report::new(status.into_iter().map(|s| s == SELECTED).collect(), stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_parlay::shuffle::random_priorities;

    #[test]
    fn rounds_are_logarithmic_on_random_graphs() {
        // Fischer–Noever: longest priority-decreasing path is O(log n)
        // whp, so the round count stays small.
        let g = gen::uniform(5000, 25_000, 1);
        let pri = random_priorities(5000, 2);
        let stats = mis_rounds(&g, &pri).stats;
        assert!(stats.rounds <= 40, "rounds {}", stats.rounds);
    }

    #[test]
    fn edge_checks_exceed_m_when_depth_grows() {
        // The baseline re-checks edges every round: on a path graph with
        // adversarial priorities the total checks far exceed m.
        let n = 300usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for i in 0..n - 1 {
            b.add(i as u32, i as u32 + 1);
        }
        let g = b.build();
        // Monotone priorities force a depth-n dependence chain.
        let pri: Vec<u32> = (0..n as u32).rev().collect();
        let report = mis_rounds(&g, &pri);
        assert!(report.output[0]);
        assert!(
            report.stats.rounds >= n / 2 - 1,
            "rounds {}",
            report.stats.rounds
        );
        assert!(report.stats.counter("edge_checks").unwrap() > 10 * g.num_edges() as u64);
    }
}
