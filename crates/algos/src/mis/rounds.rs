//! Round-synchronous greedy MIS — the deterministic-reservations style
//! baseline (§1, \[10\]): every round re-checks the readiness of *all*
//! undecided vertices, giving `O(D · m)` worst-case work. The paper's
//! TAS-tree algorithm removes exactly this re-checking; the ablation
//! bench compares the two.

use pp_graph::Graph;
use rayon::prelude::*;

/// Counters for the rounds baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundsStats {
    /// Synchronous rounds executed (= dependence-graph depth).
    pub rounds: usize,
    /// Total readiness checks (edge inspections) — the work-inefficiency
    /// indicator; compare with `m`.
    pub edge_checks: usize,
}

/// Round-synchronous greedy MIS. Same output as [`super::mis_seq`].
pub fn mis_rounds(g: &Graph, priority: &[u32]) -> (Vec<bool>, RoundsStats) {
    const UNDECIDED: u8 = 0;
    const SELECTED: u8 = 1;
    const REMOVED: u8 = 2;
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    let mut status = vec![UNDECIDED; n];
    let mut undecided: Vec<u32> = (0..n as u32).collect();
    let mut stats = RoundsStats::default();
    while !undecided.is_empty() {
        stats.rounds += 1;
        stats.edge_checks += undecided
            .iter()
            .map(|&v| g.degree(v))
            .sum::<usize>();
        // Ready: every higher-priority neighbor is removed.
        let ready: Vec<u32> = undecided
            .par_iter()
            .copied()
            .filter(|&v| {
                g.neighbors(v).iter().all(|&u| {
                    priority[u as usize] < priority[v as usize]
                        || status[u as usize] == REMOVED
                })
            })
            .collect();
        debug_assert!(!ready.is_empty(), "progress every round");
        for &v in &ready {
            status[v as usize] = SELECTED;
        }
        for &v in &ready {
            for &u in g.neighbors(v) {
                if status[u as usize] == UNDECIDED {
                    status[u as usize] = REMOVED;
                }
            }
        }
        undecided.retain(|&v| status[v as usize] == UNDECIDED);
    }
    (
        status.into_iter().map(|s| s == SELECTED).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_parlay::shuffle::random_priorities;

    #[test]
    fn rounds_are_logarithmic_on_random_graphs() {
        // Fischer–Noever: longest priority-decreasing path is O(log n)
        // whp, so the round count stays small.
        let g = gen::uniform(5000, 25_000, 1);
        let pri = random_priorities(5000, 2);
        let (_, stats) = mis_rounds(&g, &pri);
        assert!(stats.rounds <= 40, "rounds {}", stats.rounds);
    }

    #[test]
    fn edge_checks_exceed_m_when_depth_grows() {
        // The baseline re-checks edges every round: on a path graph with
        // adversarial priorities the total checks far exceed m.
        let n = 300usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for i in 0..n - 1 {
            b.add(i as u32, i as u32 + 1);
        }
        let g = b.build();
        // Monotone priorities force a depth-n dependence chain.
        let pri: Vec<u32> = (0..n as u32).rev().collect();
        let (set, stats) = mis_rounds(&g, &pri);
        assert!(set[0]);
        assert!(stats.rounds >= n / 2 - 1, "rounds {}", stats.rounds);
        assert!(stats.edge_checks > 10 * g.num_edges());
    }
}
