//! Algorithm 4: the asynchronous TAS-tree MIS.
//!
//! Each vertex `v` owns a TAS tree with one leaf per *blocking neighbor*
//! (neighbor with higher priority). A vertex with an empty tree is
//! immediately ready. Waking `v` selects it and removes each undecided
//! neighbor `u`; every removal is propagated into the TAS trees of `u`'s
//! lower-priority neighbors, and whichever propagation completes a tree
//! wakes that vertex — no rounds, no synchronization barriers
//! (Theorem 5.7: `O(m)` work, `O(log n log d_max)` span whp).
//!
//! Status transitions are protected by CAS so that selection and removal
//! can never both claim a vertex (the TAS-tree semantics already make
//! that impossible — see the argument in the module tests — but the CAS
//! keeps the code robust under any interleaving).

use phase_parallel::{CancelToken, RunOutcome, Scratch, TasForest};
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const SELECTED: u8 = 1;
const REMOVED: u8 = 2;

/// The CSR mirrors Algorithm 4 walks: a pure function of the graph and
/// the priorities, so a prepared instance builds them **once** and
/// every query skips the per-arc binary searches (`O(m log d̄)` work)
/// they cost. Build with [`blocking_mirrors`].
pub struct BlockingMirrors {
    /// Arc-offset base per vertex (mirror of the CSR offsets).
    offsets: Vec<usize>,
    /// Per-arc: slot of the reverse arc in the target's adjacency list.
    rev_slot: Vec<u32>,
    /// Per-arc `(v → u)`: the number of *blocking* neighbors of `v`
    /// strictly before this slot — i.e. `u`'s leaf index in `v`'s TAS
    /// tree when `u` blocks `v`.
    blocking_rank: Vec<u32>,
    /// Per-vertex count of blocking (higher-priority) neighbors — the
    /// TAS-tree leaf counts.
    counts: Vec<u32>,
}

impl BlockingMirrors {
    /// Per-vertex blocking-neighbor counts (TAS-tree leaf counts).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }
}

/// Build the CSR mirrors (offsets, reverse-arc slots, blocking ranks,
/// blocking counts) for `g` under `priority` — the preprocessing half
/// of [`mis_tas`].
pub fn blocking_mirrors(g: &Graph, priority: &[u32]) -> BlockingMirrors {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for v in 0..n as u32 {
        offsets.push(offsets[v as usize] + g.degree(v));
    }
    let m = offsets[n];
    let mut rev_slot = vec![0u32; m];
    let mut blocking_rank = vec![0u32; m];
    let mut counts = vec![0u32; n];
    // blocking_rank and counts: sequential per vertex, parallel over vertices.
    counts.par_iter_mut().enumerate().for_each(|(v, c)| {
        let v = v as u32;
        let mut k = 0u32;
        for &u in g.neighbors(v) {
            if priority[u as usize] > priority[v as usize] {
                k += 1;
            }
        }
        *c = k;
    });
    {
        // Fill blocking_rank (prefix counts) and rev_slot.
        let br = SyncSlice(blocking_rank.as_mut_ptr());
        let rs = SyncSlice(rev_slot.as_mut_ptr());
        (0..n as u32).into_par_iter().for_each(|v| {
            let base = offsets[v as usize];
            let mut k = 0u32;
            for (s, &u) in g.neighbors(v).iter().enumerate() {
                // SAFETY: arc slots are disjoint across vertices.
                unsafe { br.get().add(base + s).write(k) };
                if priority[u as usize] > priority[v as usize] {
                    k += 1;
                }
                // Reverse slot: position of v within u's sorted adjacency.
                let pos = g.neighbors(u).partition_point(|&w| w < v);
                debug_assert_eq!(g.neighbors(u)[pos], v);
                // SAFETY: `base + s` indexes this arc's unique slot in
                // the `rs` buffer (one slot per arc, written once).
                unsafe {
                    rs.get()
                        .add(base + s)
                        .write((offsets[u as usize] + pos) as u32)
                };
            }
        });
    }
    BlockingMirrors {
        offsets,
        rev_slot,
        blocking_rank,
        counts,
    }
}

struct State<'g> {
    g: &'g Graph,
    priority: &'g [u32],
    status: &'g [AtomicU8],
    forest: TasForest,
    mirrors: &'g BlockingMirrors,
    /// The query's deadline token, polled once per cascade level.
    cancel: Option<&'g CancelToken>,
    /// Set by the first cascade that observes a trip, so the driver can
    /// report [`RunOutcome::DeadlineExceeded`] without re-polling.
    tripped: AtomicBool,
}

impl State<'_> {
    /// Cascade-level poll: latches `tripped` on the first observation.
    fn tripped(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        if phase_parallel::deadline_tripped(self.cancel) {
            self.tripped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Asynchronous greedy MIS via TAS trees. Returns the same set as
/// [`super::mis_seq`] for the same priorities.
pub fn mis_tas(g: &Graph, priority: &[u32]) -> Vec<bool> {
    mis_tas_prepared(
        g,
        priority,
        &blocking_mirrors(g, priority),
        &mut Scratch::new(),
    )
}

/// The query half of [`mis_tas`]: run the wake cascades against
/// prebuilt [`BlockingMirrors`], drawing the status array from
/// `scratch`. Same output as [`mis_tas`] (and [`super::mis_seq`]).
pub fn mis_tas_prepared(
    g: &Graph,
    priority: &[u32],
    mirrors: &BlockingMirrors,
    scratch: &mut Scratch,
) -> Vec<bool> {
    mis_tas_prepared_cancellable(g, priority, mirrors, scratch, None).0
}

/// [`mis_tas_prepared`] under an optional deadline. The algorithm has
/// no rounds, so the poll sits at *cascade-level* granularity: each
/// cascade checks the token between levels and abandons its remaining
/// frontier on a trip. The partial selection is a valid independent set
/// (never maximal) and is tagged [`RunOutcome::DeadlineExceeded`]; with
/// an untripped token the output is byte-identical to the plain run.
pub fn mis_tas_prepared_cancellable(
    g: &Graph,
    priority: &[u32],
    mirrors: &BlockingMirrors,
    scratch: &mut Scratch,
    cancel: Option<&CancelToken>,
) -> (Vec<bool>, RunOutcome) {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    assert_eq!(mirrors.counts.len(), n, "mirrors built for another graph");
    let mut status = scratch.take_vec::<AtomicU8>("mis_status");
    status.resize_with(n, || AtomicU8::new(UNDECIDED));

    let state = State {
        g,
        priority,
        status: &status,
        forest: TasForest::new(&mirrors.counts),
        mirrors,
        cancel,
        tripped: AtomicBool::new(false),
    };

    // Kick off every vertex with no blocking neighbor, in parallel.
    (0..n as u32).into_par_iter().for_each(|v| {
        if state.forest.leaves_of(v as usize) == 0 && !state.tripped() {
            wake_cascade(&state, v);
        }
    });

    let outcome = if state.tripped.load(Ordering::Relaxed) {
        RunOutcome::DeadlineExceeded
    } else {
        RunOutcome::Completed
    };
    let out = status
        .iter()
        .map(|s| s.load(Ordering::Relaxed) == SELECTED)
        .collect();
    scratch.put_vec("mis_status", status);
    (out, outcome)
}

/// Select `v` and run the whole wake cascade it triggers (Algorithm 4's
/// `WakeUp`, iterated). The cascade advances level by level within this
/// call — a loop rather than recursion so that a priority chain of depth
/// `Θ(n)` (the worst case) cannot overflow the stack; the breadth at
/// each level still fans out through `rayon`. Many cascades started from
/// different roots run concurrently.
fn wake_cascade(state: &State<'_>, v0: u32) {
    let mut frontier = vec![v0];
    // Level buffers ping-pong across the cascade's levels so a deep
    // cascade reuses their capacity instead of collecting two fresh
    // vectors per level.
    let mut claimed: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    while !frontier.is_empty() {
        if state.tripped() {
            return; // abandon the rest of this cascade
        }
        // Select this level. Vertices arriving here are never adjacent:
        // a TAS-tree only completes when all higher-priority neighbors
        // are removed, and a vertex being selected is not removed.
        for &v in &frontier {
            let ok = state.status[v as usize]
                .compare_exchange(UNDECIDED, SELECTED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            debug_assert!(ok, "TAS-tree completion implies undecided");
        }
        // Remove neighbors and collect the vertices whose TAS trees the
        // removals complete — the next level of this cascade.
        claimed.clear();
        claimed.par_extend(
            frontier
                .par_iter()
                .flat_map_iter(|&v| state.g.neighbors(v).iter().copied())
                .filter(|&u| {
                    // First claim of the removal processes it exactly once.
                    state.status[u as usize]
                        .compare_exchange(UNDECIDED, REMOVED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                }),
        );
        next.clear();
        next.par_extend(claimed.par_iter().flat_map_iter(|&u| removed(state, u)));
        std::mem::swap(&mut frontier, &mut next);
    }
}

/// `u` just became unavailable: notify the TAS trees of all vertices `w`
/// that `u` blocks (i.e. `pri[w] < pri[u]`). Returns the vertices whose
/// trees completed (now ready to wake).
fn removed(state: &State<'_>, u: u32) -> Vec<u32> {
    let m = state.mirrors;
    let base = m.offsets[u as usize];
    state
        .g
        .neighbors(u)
        .iter()
        .enumerate()
        .filter_map(|(s, &w)| {
            if state.priority[w as usize] < state.priority[u as usize]
                && state.status[w as usize].load(Ordering::Relaxed) != REMOVED
            {
                // Leaf of u in w's tree = number of blocking neighbors of
                // w before the (w → u) arc.
                let leaf = m.blocking_rank[m.rev_slot[base + s] as usize];
                if state.forest.mark(w as usize, leaf as usize) {
                    return Some(w);
                }
            }
            None
        })
        .collect()
}

/// Disjoint-slot parallel writes (each arc slot written once).
struct SyncSlice<T>(*mut T);
// SAFETY: each arc slot is written by exactly one worker (disjoint
// indices), so shared cross-thread use never aliases a write.
unsafe impl<T: Send> Send for SyncSlice<T> {}
unsafe impl<T: Send> Sync for SyncSlice<T> {}
impl<T> SyncSlice<T> {
    /// Accessor (not field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer.
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_parlay::shuffle::random_priorities;

    #[test]
    fn triangle_selects_highest() {
        let mut b = pp_graph::GraphBuilder::new(3).symmetric();
        b.add(0, 1);
        b.add(1, 2);
        b.add(0, 2);
        let g = b.build();
        let set = mis_tas(&g, &[5, 9, 1]);
        assert_eq!(set, vec![false, true, false]);
    }

    #[test]
    fn deterministic_across_runs() {
        // The greedy MIS is a function of priorities alone; repeated runs
        // (different schedules) must agree.
        let g = gen::rmat(10, 8192, 3);
        let pri = random_priorities(g.num_vertices(), 42);
        let first = mis_tas(&g, &pri);
        for _ in 0..5 {
            assert_eq!(mis_tas(&g, &pri), first);
        }
    }

    #[test]
    fn high_degree_stress() {
        // Star-of-stars: deep wake chains through high-degree hubs.
        let g = gen::star(5000);
        let pri = random_priorities(5000, 7);
        let set = mis_tas(&g, &pri);
        assert!(super::super::is_maximal_independent(&g, &set));
    }
}
