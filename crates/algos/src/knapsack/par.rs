//! Phase-parallel unlimited knapsack (Theorem 4.3): `O(nW)` work,
//! `O((W / w*) log n)` span.
//!
//! The frontier of round `i` is the weight window
//! `[i·w*, (i+1)·w*)`: every dependency of a state in the window lands in
//! an earlier window (items weigh ≥ w*), so the whole window fills in
//! parallel.

use super::Item;
use phase_parallel::{run_type1_cancellable, CancelToken, Report, Type1Problem};
use rayon::prelude::*;

/// Parallel unlimited knapsack. The report's `stats.rounds ==
/// ⌈W / w*⌉` = the relaxed rank of the instance.
pub fn max_value_par(items: &[Item], capacity: u64) -> Report<u64> {
    max_value_par_with_dp(items, capacity).map(|(v, _)| v)
}

/// [`max_value_par`] under an optional deadline: the window loop polls
/// `cancel` each round; a trip stops the fill early with a partial DP
/// table under `RunOutcome::DeadlineExceeded`.
pub fn max_value_par_cancellable(
    items: &[Item],
    capacity: u64,
    cancel: Option<&CancelToken>,
) -> Report<u64> {
    max_value_engine(items, capacity, cancel).map(|(v, _)| v)
}

/// [`max_value_par`] also returning the full DP table (for
/// [`super::reconstruct`]): the output is `(max value, dp)`.
pub fn max_value_par_with_dp(items: &[Item], capacity: u64) -> Report<(u64, Vec<u64>)> {
    max_value_engine(items, capacity, None)
}

fn max_value_engine(
    items: &[Item],
    capacity: u64,
    cancel: Option<&CancelToken>,
) -> Report<(u64, Vec<u64>)> {
    if items.is_empty() || capacity == 0 {
        return Report::plain((0, vec![0; capacity as usize + 1]));
    }
    let w_star = items.iter().map(|i| i.weight).min().expect("non-empty") as usize;
    let w = capacity as usize;

    struct Problem<'a> {
        items: &'a [Item],
        dp: Vec<u64>,
        w: usize,
        w_star: usize,
        next: usize,
    }

    impl Type1Problem for Problem<'_> {
        type Output = Vec<u64>;

        fn extract_frontier(&mut self) -> Vec<u32> {
            if self.next > self.w {
                return Vec::new();
            }
            let lo = self.next;
            let hi = (lo + self.w_star).min(self.w + 1);
            self.next = hi;
            (lo as u32..hi as u32).collect()
        }

        fn process(&mut self, frontier: &[u32]) {
            let lo = frontier[0] as usize;
            let hi = *frontier.last().unwrap() as usize + 1;
            // States in [lo, hi) read only dp[..lo]: split the borrow.
            let (prefix, window) = self.dp.split_at_mut(lo);
            let items = self.items;
            window[..hi - lo]
                .par_iter_mut()
                .enumerate()
                .for_each(|(off, slot)| {
                    let j = lo + off;
                    let mut best = 0u64;
                    for it in items {
                        let iw = it.weight as usize;
                        if iw <= j {
                            debug_assert!(j - iw < prefix.len());
                            best = best.max(prefix[j - iw] + it.value);
                        }
                    }
                    *slot = best;
                });
        }

        fn finish(self) -> Vec<u64> {
            self.dp
        }
    }

    let (dp, stats, outcome) = run_type1_cancellable(
        Problem {
            items,
            dp: vec![0u64; w + 1],
            w,
            w_star,
            // State 0 has value 0 and no work; start the windows at 1 so
            // the first frontier is [1, w*).
            next: 1,
        },
        cancel,
    );
    Report::new((dp[w], dp), stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_boundaries_exact() {
        // w* = 3, W = 9: windows [1,4), [4,7), [7,10) → 3 rounds.
        let items = vec![Item::new(3, 4), Item::new(5, 7)];
        let stats = max_value_par(&items, 9).stats;
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.frontier_sizes, vec![3, 3, 3]);
    }

    #[test]
    fn w_star_one_is_sequential_rank() {
        // w* = 1 → every state is its own round: rank = W.
        let items = vec![Item::new(1, 1)];
        let report = max_value_par(&items, 20);
        assert_eq!(report.output, 20);
        assert_eq!(report.stats.rounds, 20);
    }
}
