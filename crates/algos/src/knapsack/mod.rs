//! Unlimited (unbounded) knapsack (§4.2, Theorem 4.3).
//!
//! `dp[j] = max(0, max_{w_i <= j} dp[j - w_i] + v_i)` over weights
//! `j = 0..=W`. The rank of state `j` is `⌊j / w*⌋` where `w*` is the
//! minimum item weight, because any dependency `j → j - w_i` jumps back
//! at least `w*`: all states inside one `w*`-aligned window are mutually
//! independent and form one frontier — the Type 1 extraction is just a
//! window advance (a degenerate range query).

mod par;
mod seq;

pub use par::{max_value_par, max_value_par_cancellable, max_value_par_with_dp};
pub use seq::max_value_seq;

/// Recover one optimal item multiset from the DP table: returns item
/// indices (with repetition) whose weights sum to ≤ `capacity` and whose
/// values sum to `dp[capacity]`. `O(W + answer·n)` backward walk.
pub fn reconstruct(items: &[Item], dp: &[u64], capacity: u64) -> Vec<usize> {
    let mut out = Vec::new();
    let mut j = capacity as usize;
    debug_assert_eq!(dp.len(), j + 1);
    // Walk down to the smallest j with the same value (unused slack).
    while j > 0 && dp[j - 1] == dp[j] {
        j -= 1;
    }
    while j > 0 && dp[j] > 0 {
        let (i, _) = items
            .iter()
            .enumerate()
            .find(|&(_, it)| {
                it.weight as usize <= j && dp[j - it.weight as usize] + it.value == dp[j]
            })
            .expect("dp table inconsistent");
        out.push(i);
        j -= items[i].weight as usize;
        while j > 0 && dp[j - 1] == dp[j] {
            j -= 1;
        }
    }
    out
}

/// One item: integer weight ≥ 1 and value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Item {
    /// Weight (must be ≥ 1).
    pub weight: u64,
    /// Value.
    pub value: u64,
}

impl Item {
    /// Construct an item; panics on zero weight (a zero-weight item
    /// makes the optimum unbounded and the rank undefined).
    pub fn new(weight: u64, value: u64) -> Self {
        assert!(weight >= 1, "item weight must be at least 1");
        Self { weight, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;

    /// Exponential-ish oracle: plain recursion with memo over small W.
    fn oracle(items: &[Item], w: u64) -> u64 {
        let mut dp = vec![0u64; w as usize + 1];
        for j in 1..=w as usize {
            for it in items {
                if it.weight as usize <= j {
                    dp[j] = dp[j].max(dp[j - it.weight as usize] + it.value);
                }
            }
        }
        dp[w as usize]
    }

    #[test]
    fn seq_and_par_match_oracle() {
        let mut r = Rng::new(1);
        for trial in 0..20 {
            let n = 1 + r.range(12) as usize;
            let items: Vec<Item> = (0..n)
                .map(|_| Item::new(1 + r.range(20), r.range(100)))
                .collect();
            let w = r.range(200);
            let want = oracle(&items, w);
            assert_eq!(max_value_seq(&items, w), want, "seq trial {trial}");
            assert_eq!(max_value_par(&items, w).output, want, "par trial {trial}");
        }
    }

    #[test]
    fn classic_instance() {
        // Coins {1,5,11} with values equal to weights fill W exactly.
        let items = vec![Item::new(1, 1), Item::new(5, 5), Item::new(11, 11)];
        assert_eq!(max_value_seq(&items, 100), 100);
        assert_eq!(max_value_par(&items, 100).output, 100);
        // Value-dense small item dominates: three copies of (3, 7).
        let items = vec![Item::new(3, 7), Item::new(5, 9)];
        assert_eq!(max_value_seq(&items, 10), 21);
        assert_eq!(max_value_par(&items, 10).output, 21);
    }

    #[test]
    fn rounds_equal_relaxed_rank() {
        // rank(W) = W / w* (Theorem 4.3).
        let items = vec![Item::new(4, 10), Item::new(7, 15)];
        let report = max_value_par(&items, 100);
        assert_eq!(report.output, max_value_seq(&items, 100));
        assert_eq!(report.stats.rounds as u64, 100 / 4); // w*-wide windows covering 1..=100
    }

    #[test]
    fn reconstruction_is_optimal_and_feasible() {
        let mut r = Rng::new(9);
        for trial in 0..15 {
            let n = 1 + r.range(8) as usize;
            let items: Vec<Item> = (0..n)
                .map(|_| Item::new(1 + r.range(15), r.range(60)))
                .collect();
            let w = 10 + r.range(150);
            let (best, dp) = max_value_par_with_dp(&items, w).output;
            let chosen = reconstruct(&items, &dp, w);
            let total_w: u64 = chosen.iter().map(|&i| items[i].weight).sum();
            let total_v: u64 = chosen.iter().map(|&i| items[i].value).sum();
            assert!(total_w <= w, "trial {trial}: overweight");
            assert_eq!(total_v, best, "trial {trial}: value mismatch");
        }
    }

    #[test]
    fn empty_and_unreachable() {
        assert_eq!(max_value_seq(&[], 50), 0);
        assert_eq!(max_value_par(&[], 50).output, 0);
        // All items heavier than W.
        let items = vec![Item::new(100, 5)];
        assert_eq!(max_value_seq(&items, 50), 0);
        assert_eq!(max_value_par(&items, 50).output, 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_weight() {
        Item::new(0, 5);
    }
}
