//! Sequential unlimited knapsack: the classic `O(nW)` DP.

use super::Item;

/// Maximum achievable value with total weight ≤ `capacity`.
pub fn max_value_seq(items: &[Item], capacity: u64) -> u64 {
    let w = capacity as usize;
    let mut dp = vec![0u64; w + 1];
    for j in 1..=w {
        let mut best = 0;
        for it in items {
            let iw = it.weight as usize;
            if iw <= j {
                best = best.max(dp[j - iw] + it.value);
            }
        }
        dp[j] = best;
    }
    dp[w]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity() {
        assert_eq!(max_value_seq(&[Item::new(1, 10)], 0), 0);
    }

    #[test]
    fn single_item_repeats() {
        assert_eq!(max_value_seq(&[Item::new(3, 5)], 10), 15); // 3 copies
    }
}
