//! [`SharedPrepared`]: an owned, `Arc`-shareable prepared instance —
//! the handle the serving tier caches and fans out across workers.
//!
//! # Why this module exists
//!
//! The prepare/query split ties a prepared instance to a *borrow* of
//! its input: [`PhaseAlgorithm::prepare`] returns `Prepared<'i>`, which
//! points into the input's bulk data so preparation never copies it.
//! That is exactly right for a caller that owns both, but a serving
//! tier cannot hold a borrow in a cache: the instance must own its
//! input, live behind `Arc`, move between threads, and outlive every
//! stack frame that created it.
//!
//! [`SharedPrepared`] closes that gap with a heap-pinned *self-cell*:
//! the cell owns the input in a `Box` whose address never changes
//! (raw-pointer-held, so no `&mut` to the box can ever exist to
//! invalidate the borrow), prepares against that pinned allocation at
//! an unconstrained lifetime, and drops the prepared half strictly
//! before the input half. Prepared instances are immutable after
//! `prepare()` — every query takes `&Prepared` — so any number of
//! workers may query one cell concurrently, each with its own
//! [`Scratch`].
//!
//! This is the one place the serving stack needs `unsafe`: the borrow
//! checker cannot see that the boxed input outlives the prepared
//! borrower when both live in one struct. The cell keeps the unsafe
//! surface to three audited sites (pin + borrow, the `Send`/`Sync`
//! assertions, and the final free).
//!
//! Type erasure: the cell hides behind the object-safe
//! [`PreparedService`] trait, so the registry can hand out
//! [`SharedPrepared`] handles for every entry uniformly — queries
//! come back as output digests plus [`ExecutionStats`], the same
//! currency the registry's conformance machinery already speaks.

use crate::registry::Digest;
use phase_parallel::{ExecutionStats, PhaseAlgorithm, RunConfig, RunOutcome, Scratch};
use std::borrow::Borrow;
use std::sync::Arc;

/// A served query's result: the output digest plus the run's stats.
#[derive(Clone, Debug)]
pub struct ServedQuery {
    /// FNV-1a digest of the output (the registry's conformance
    /// currency; see [`crate::registry::Digest`]).
    pub digest: u64,
    /// The query's execution statistics.
    pub stats: ExecutionStats,
    /// How the run ended. On [`RunOutcome::DeadlineExceeded`] the digest
    /// covers the *partial* output and must not be compared against a
    /// completed run's.
    pub outcome: RunOutcome,
}

/// Object-safe view of one owned prepared instance: what the serving
/// tier needs, with the input/prepared types erased.
pub trait PreparedService: Send + Sync {
    /// The registry entry this instance was prepared for.
    fn entry_name(&self) -> &'static str;

    /// The instance's cache-cost estimate in bytes (see
    /// [`estimated_cost_bytes`]).
    fn cost_bytes(&self) -> usize;

    /// One query against the shared prepared instance. `scratch` is the
    /// calling worker's own workspace; the instance itself is only read.
    fn query(&self, scratch: &mut Scratch, cfg: &RunConfig) -> ServedQuery;

    /// A fresh one-shot `solve_par` against the owned input under
    /// `cfg` — the reference digest cached/shared serving must match.
    fn one_shot_digest(&self, cfg: &RunConfig) -> u64;
}

/// The self-referential cell: owns the input at a pinned heap address
/// and the prepared instance borrowing it.
///
/// Field order is not what guarantees drop order — [`Drop`] is manual:
/// `prepared` is cleared first, then the input box is reclaimed.
struct ServeCell<A, I>
where
    A: PhaseAlgorithm + 'static,
    A::Input: 'static,
    I: Borrow<A::Input> + 'static,
{
    algo: A,
    entry: &'static str,
    cost: usize,
    /// `Some` from construction until drop. The `'static` is a
    /// self-borrow of `*input`, never exposed outside the cell.
    prepared: Option<A::Prepared<'static>>,
    /// The pinned input allocation (`Box::into_raw` in `new`). Held as
    /// a raw pointer so no `&mut I` can ever be formed — the borrow in
    /// `prepared` stays valid for the cell's whole life.
    input: *mut I,
}

// SAFETY: the cell owns its pointee exclusively (the raw pointer is the
// only handle to the boxed input and is never aliased mutably), so the
// cell moves between threads whenever all its owned parts do. `prepared`
// self-borrows `*input`, which moves with the cell.
unsafe impl<A, I> Send for ServeCell<A, I>
where
    A: PhaseAlgorithm + Send + 'static,
    A::Input: 'static,
    for<'i> A::Prepared<'i>: Send,
    I: Borrow<A::Input> + Send + 'static,
{
}

// SAFETY: every query path takes `&self` — the prepared instance and the
// input are only ever read after construction — so shared references are
// safe across threads whenever the owned parts are `Sync`.
unsafe impl<A, I> Sync for ServeCell<A, I>
where
    A: PhaseAlgorithm + Sync + 'static,
    A::Input: Sync + 'static,
    for<'i> A::Prepared<'i>: Sync,
    I: Borrow<A::Input> + Sync + 'static,
{
}

impl<A, I> ServeCell<A, I>
where
    A: PhaseAlgorithm + 'static,
    A::Input: 'static,
    I: Borrow<A::Input> + 'static,
{
    fn new(entry: &'static str, algo: A, input: I, cost: usize) -> Self {
        let input = Box::into_raw(Box::new(input));
        // SAFETY: `input` came from `Box::into_raw` above — valid,
        // aligned, exclusively owned by this cell — and the allocation
        // is neither moved nor freed until `Drop`, where `prepared` (the
        // only borrower) is destroyed first. That ordering is what makes
        // the `'static` ascription sound.
        let borrowed: &'static A::Input = unsafe { &*input }.borrow();
        let prepared = algo.prepare(borrowed);
        Self {
            algo,
            entry,
            cost,
            prepared: Some(prepared),
            input,
        }
    }
}

impl<A, I> Drop for ServeCell<A, I>
where
    A: PhaseAlgorithm + 'static,
    A::Input: 'static,
    I: Borrow<A::Input> + 'static,
{
    fn drop(&mut self) {
        // The borrower dies before its referent:
        self.prepared = None;
        // SAFETY: `input` came from `Box::into_raw` in `new`, is freed
        // nowhere else, and nothing borrows it anymore (`prepared` was
        // just cleared; queries hold `&self`, which drop excludes).
        unsafe { drop(Box::from_raw(self.input)) };
    }
}

impl<A, I> PreparedService for ServeCell<A, I>
where
    A: PhaseAlgorithm + Send + Sync + 'static,
    A::Input: Sync + 'static,
    A::Output: Digest + Send,
    for<'i> A::Prepared<'i>: Send + Sync,
    I: Borrow<A::Input> + Send + Sync + 'static,
{
    fn entry_name(&self) -> &'static str {
        self.entry
    }

    fn cost_bytes(&self) -> usize {
        self.cost
    }

    fn query(&self, scratch: &mut Scratch, cfg: &RunConfig) -> ServedQuery {
        let prepared = self.prepared.as_ref().expect("live until drop");
        // The lease's drop check (debug builds) pins the take/put
        // protocol for every family on the serve path: a query that
        // strands a buffer fails here instead of growing memory.
        let mut lease = scratch.lease();
        let report = self.algo.solve_prepared(prepared, &mut lease, cfg);
        ServedQuery {
            digest: report.output.digest(),
            stats: report.stats,
            outcome: report.outcome,
        }
    }

    fn one_shot_digest(&self, cfg: &RunConfig) -> u64 {
        // SAFETY: `input` is valid for the cell's whole life (see
        // `new`); this shared borrow lives only for this call and
        // coexists fine with the one in `prepared`.
        let input: &A::Input = unsafe { &*self.input }.borrow();
        self.algo.solve_par(input, cfg).output.digest()
    }
}

/// An owned, cheaply-clonable handle to one shared prepared instance.
/// Clones share the instance; the last one to drop frees it (prepared
/// half first, then the pinned input).
///
/// ```
/// use phase_parallel::{RunConfig, Scratch};
/// use pp_algos::registry::{self, CaseSpec};
///
/// let entry = registry::lookup("sssp/delta").unwrap();
/// let shared = entry.prepare_shared(&CaseSpec::new(120, 3), &RunConfig::seeded(3));
/// let mut scratch = Scratch::new(); // one per worker
/// let cfg = RunConfig::seeded(3).with_source(5);
/// let served = shared.query(&mut scratch, &cfg);
/// assert_eq!(served.digest, shared.one_shot_digest(&cfg));
/// ```
#[derive(Clone)]
pub struct SharedPrepared {
    inner: Arc<dyn PreparedService>,
}

impl SharedPrepared {
    /// Pin `input`, prepare it once, and wrap the pair for sharing.
    /// `cost_bytes` is the instance's cache-cost estimate.
    pub fn new<A, I>(entry: &'static str, algo: A, input: I, cost_bytes: usize) -> Self
    where
        A: PhaseAlgorithm + Send + Sync + 'static,
        A::Input: Sync + 'static,
        A::Output: Digest + Send,
        for<'i> A::Prepared<'i>: Send + Sync,
        I: Borrow<A::Input> + Send + Sync + 'static,
    {
        Self {
            inner: Arc::new(ServeCell::new(entry, algo, input, cost_bytes)),
        }
    }

    /// The registry entry this instance serves.
    pub fn entry_name(&self) -> &'static str {
        self.inner.entry_name()
    }

    /// The instance's cache-cost estimate in bytes.
    pub fn cost_bytes(&self) -> usize {
        self.inner.cost_bytes()
    }

    /// One query against the shared instance, on the calling worker's
    /// own `scratch`. Concurrent calls from many workers are the point:
    /// the instance is only read.
    pub fn query(&self, scratch: &mut Scratch, cfg: &RunConfig) -> ServedQuery {
        self.inner.query(scratch, cfg)
    }

    /// A fresh one-shot run against the owned input — the conformance
    /// reference for cached/shared serving.
    pub fn one_shot_digest(&self, cfg: &RunConfig) -> u64 {
        self.inner.one_shot_digest(cfg)
    }

    /// How many handles currently share the instance (diagnostics).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl std::fmt::Debug for SharedPrepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPrepared")
            .field("entry", &self.entry_name())
            .field("cost_bytes", &self.cost_bytes())
            .field("handles", &self.handle_count())
            .finish()
    }
}

/// Deterministic cache-cost estimate for a registry case, in bytes.
///
/// Deliberately an *estimate*: every registry instance is `O(size)`
/// (edge lists, CSR mirrors, precomputed weights all scale linearly in
/// vertices/elements at bounded degree), so a fixed overhead plus a
/// per-element charge ranks instances correctly for LRU budgeting
/// without a per-family accounting pass. The constant is generous so a
/// budget expressed in instances-worth of bytes behaves intuitively.
pub fn estimated_cost_bytes(size: usize) -> usize {
    4096 + size * 128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DeltaSssp, Lis, SsspInstance};
    use pp_graph::gen;

    fn small_instance() -> SsspInstance {
        let g = gen::with_uniform_weights(&gen::uniform(80, 320, 5), 1, 100, 5);
        SsspInstance::new(g, 0)
    }

    #[test]
    fn shared_queries_match_one_shot() {
        let shared = SharedPrepared::new("sssp/delta", DeltaSssp, small_instance(), 1 << 16);
        let mut scratch = Scratch::new();
        for source in [0u32, 3, 17, 40] {
            let cfg = RunConfig::seeded(7).with_source(source);
            assert_eq!(
                shared.query(&mut scratch, &cfg).digest,
                shared.one_shot_digest(&cfg),
                "source {source}"
            );
        }
    }

    #[test]
    fn clones_share_one_instance() {
        let shared = SharedPrepared::new("sssp/delta", DeltaSssp, small_instance(), 64);
        let other = shared.clone();
        assert_eq!(shared.handle_count(), 2);
        assert_eq!(other.entry_name(), "sssp/delta");
        assert_eq!(other.cost_bytes(), 64);
        drop(shared);
        assert_eq!(other.handle_count(), 1);
        // The survivor still serves correct answers.
        let cfg = RunConfig::seeded(1).with_source(2);
        let mut scratch = Scratch::new();
        assert_eq!(
            other.query(&mut scratch, &cfg).digest,
            other.one_shot_digest(&cfg)
        );
    }

    #[test]
    fn unsized_borrowed_inputs_work() {
        // `Lis::Input = [i64]`: the cell pins a `Vec<i64>` and borrows
        // the slice out of it.
        let series: Vec<i64> = vec![4, 7, 3, 2, 8, 1, 6, 5];
        let shared = SharedPrepared::new("lis", Lis, series, 1024);
        let cfg = RunConfig::seeded(42);
        let mut scratch = Scratch::new();
        assert_eq!(
            shared.query(&mut scratch, &cfg).digest,
            shared.one_shot_digest(&cfg)
        );
    }

    #[test]
    fn handles_move_between_threads() {
        let shared = SharedPrepared::new("sssp/delta", DeltaSssp, small_instance(), 64);
        let cfg = RunConfig::seeded(3).with_source(9);
        let expected = shared.one_shot_digest(&cfg);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = shared.clone();
                let cfg = cfg.clone();
                std::thread::spawn(move || shared.query(&mut Scratch::new(), &cfg).digest)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }
}
