//! Ordering heuristics for greedy coloring (§5.3's discussion of
//! Hasenplaugh et al. \[48\]): the greedy order is a *priority function*,
//! and different priorities trade span bounds against output quality.
//!
//! * **R** — uniformly random (the baseline; `O(log n)` dependence depth
//!   whp on bounded-degree graphs).
//! * **LF** — largest-degree-first: high-degree vertices get colored
//!   early, which empirically reduces the number of colors.
//! * **LLF** — largest-*log*-degree-first: like LF but only the log of
//!   the degree matters, with random tie-breaking inside a log-class;
//!   Hasenplaugh et al. show this keeps the depth `O(Δ log Δ + log n
//!   log Δ / log log n)` while retaining most of LF's quality.
//! * **SL** — smallest-degree-last: k-core peeling; colors with at most
//!   `degeneracy + 1` colors, the strongest quality guarantee of \[48\].
//!
//! All heuristics plug into the same TAS-tree engine
//! ([`crate::coloring::coloring_par`]) — the paper's point is precisely
//! that the wake-up mechanism is orthogonal to the order.

use phase_parallel::{PrioritySource, RunConfig};
use pp_graph::Graph;
use pp_parlay::shuffle::random_permutation;
use rayon::prelude::*;

/// Vertex priorities for `g` according to the configuration's
/// [`RunConfig::priority_source`] (seeded by `cfg.seed`) — how driver
/// layers (the registry, benches, services) turn the typed knob into
/// the priority vector the greedy graph algorithms take as input.
pub fn priorities_from_config(g: &Graph, cfg: &RunConfig) -> Vec<u32> {
    match cfg.priority_source {
        PrioritySource::Random => order_random(g, cfg.seed),
        PrioritySource::LargestDegreeFirst => order_largest_degree_first(g, cfg.seed),
        PrioritySource::LargestLogDegreeFirst => order_largest_log_degree_first(g, cfg.seed),
        PrioritySource::SmallestDegreeLast => order_smallest_degree_last(g, cfg.seed),
    }
}

/// Random priorities (R).
pub fn order_random(g: &Graph, seed: u64) -> Vec<u32> {
    pp_parlay::shuffle::random_priorities(g.num_vertices(), seed)
}

/// Largest-degree-first priorities (LF): priority increases with
/// degree; random tie-break among equal degrees.
pub fn order_largest_degree_first(g: &Graph, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let tie = random_permutation(n, seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), tie[v as usize]));
    // Position in ascending (degree, tie) order = priority rank.
    let mut pri = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        pri[v as usize] = rank as u32;
    }
    pri
}

/// Largest-log-degree-first priorities (LLF): degree log-class first,
/// random within the class.
pub fn order_largest_log_degree_first(g: &Graph, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let tie = random_permutation(n, seed);
    let log_class = |v: u32| 64 - (g.degree(v) as u64 + 1).leading_zeros();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (log_class(v), tie[v as usize]));
    let mut pri = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        pri[v as usize] = rank as u32;
    }
    pri
}

/// Smallest-degree-last priorities (SL): peel minimum-degree vertices in
/// rounds (the k-core peeling of Matula–Beck); vertices peeled *later*
/// are colored *earlier*. Hasenplaugh et al.'s strongest-quality order —
/// it colors every graph of degeneracy `d` with at most `d + 1` colors
/// where LF can need `Δ + 1` — at the cost of the peeling precomputation
/// (`O(n + m)` work, rounds = degeneracy peel depth).
pub fn order_smallest_degree_last(g: &Graph, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let tie = random_permutation(n, seed);
    let mut deg: Vec<i64> = (0..n as u32).map(|v| g.degree(v) as i64).collect();
    let mut peeled = vec![false; n];
    let mut peel_round = vec![0u32; n];
    let mut remaining = n;
    let mut round = 0u32;
    while remaining > 0 {
        // Peel every vertex at the current minimum remaining degree.
        let min_deg = (0..n)
            .filter(|&v| !peeled[v])
            .map(|v| deg[v])
            .min()
            .unwrap();
        let batch: Vec<u32> = (0..n as u32)
            .filter(|&v| !peeled[v as usize] && deg[v as usize] == min_deg)
            .collect();
        for &v in &batch {
            peeled[v as usize] = true;
            peel_round[v as usize] = round;
        }
        for &v in &batch {
            for &u in g.neighbors(v) {
                deg[u as usize] -= 1;
            }
        }
        remaining -= batch.len();
        round += 1;
    }
    // Later peel round ⇒ higher priority; random tie-break inside a round.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (peel_round[v as usize], tie[v as usize]));
    let mut pri = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        pri[v as usize] = rank as u32;
    }
    pri
}

/// Number of colors a coloring uses.
pub fn num_colors(coloring: &[u32]) -> u32 {
    coloring.par_iter().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{coloring_par, coloring_seq, is_proper_coloring};
    use pp_graph::gen;

    #[test]
    fn heuristics_are_valid_priorities() {
        let g = gen::rmat(10, 8192, 1);
        for pri in [
            order_random(&g, 2),
            order_largest_degree_first(&g, 2),
            order_largest_log_degree_first(&g, 2),
            order_smallest_degree_last(&g, 2),
        ] {
            // A permutation of 0..n.
            let mut sorted = pri.clone();
            sorted.sort_unstable();
            assert!(sorted.iter().enumerate().all(|(i, &p)| p == i as u32));
            // Par and seq agree under every heuristic.
            let c = coloring_par(&g, &pri);
            assert_eq!(c, coloring_seq(&g, &pri));
            assert!(is_proper_coloring(&g, &c));
        }
    }

    #[test]
    fn sl_achieves_degeneracy_plus_one_on_crown_like_graph() {
        // A tree has degeneracy 1: SL must 2-color it even though LF's
        // bound only gives Δ + 1. Binary tree with n = 511, Δ = 3.
        let n = 511usize;
        let mut b = pp_graph::GraphBuilder::new(n).symmetric();
        for i in 1..n as u32 {
            b.add(i, (i - 1) / 2);
        }
        let g = b.build();
        let pri = order_smallest_degree_last(&g, 5);
        let c = coloring_par(&g, &pri);
        assert!(is_proper_coloring(&g, &c));
        assert_eq!(num_colors(&c), 2, "SL on a tree = degeneracy + 1");
    }

    #[test]
    fn sl_peels_cycle_in_one_round() {
        // A cycle is 2-regular: everything peels in round 1; SL = random
        // order, coloring uses ≤ 3 colors.
        let g = gen::cycle(100);
        let pri = order_smallest_degree_last(&g, 6);
        let c = coloring_par(&g, &pri);
        assert!(is_proper_coloring(&g, &c));
        assert!(num_colors(&c) <= 3);
    }

    #[test]
    fn lf_orders_hubs_first() {
        let g = gen::star(100);
        let pri = order_largest_degree_first(&g, 1);
        // The hub has the unique largest degree → the top priority.
        assert_eq!(pri[0], 99);
        let c = coloring_par(&g, &pri);
        assert_eq!(num_colors(&c), 2);
        assert_eq!(c[0], 0); // hub colored first, gets color 0
    }

    #[test]
    fn lf_no_worse_than_random_on_skewed_graph() {
        // On power-law graphs LF typically uses no more colors than R.
        let g = gen::rmat(11, 1 << 14, 3);
        let c_r = coloring_par(&g, &order_random(&g, 4));
        let c_lf = coloring_par(&g, &order_largest_degree_first(&g, 4));
        assert!(
            num_colors(&c_lf) <= num_colors(&c_r),
            "LF {} vs R {}",
            num_colors(&c_lf),
            num_colors(&c_r)
        );
    }

    #[test]
    fn llf_classes_respect_log_degree() {
        let g = gen::star(1000);
        let pri = order_largest_log_degree_first(&g, 5);
        // The hub's log-class (≈ 10) dominates the leaves' (1).
        assert!(pri[0] > pri[1]);
        assert!(pri[0] > pri[999]);
    }
}
