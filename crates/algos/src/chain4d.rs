//! Longest chain under 4D dominance — the 2D-grid Whac-A-Mole substrate.
//!
//! The 2D-grid mole cone `|dx| + |dy| ≤ dt` rotates into **four**
//! halfspace constraints (see `whac.rs`), so the grid game is a longest
//! chain under coordinate-wise dominance in four (linearly dependent)
//! coordinates. This module runs the phase-parallel Type 2 machinery one
//! more dimension up from [`crate::chain3d`], on
//! [`pp_ranges::RangeTree4d`]: `O(n log^5 n)` work and `O(k log^4 n)`
//! span for chain length `k` — each extra dimension costs the one extra
//! `log` the appendix describes.
//!
//! The module is generic over points, so it also serves as the stress
//! test for the 4D tree; [`crate::whac::whac2d_par`] maps moles onto it.

use crate::chain3d::slots;
use phase_parallel::{
    run_type2_cancellable, PivotMode, Report, RunConfig, Type2Problem, WakeResult,
};
use pp_parlay::rng::{hash64, Rng};
use pp_ranges::{RangeTree3d, RangeTree4d};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A 4D point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point4 {
    /// First coordinate.
    pub a: i64,
    /// Second coordinate.
    pub b: i64,
    /// Third coordinate.
    pub c: i64,
    /// Fourth coordinate.
    pub d: i64,
}

/// Longest strict-dominance chain, quadratic oracle (tests only).
pub fn chain4d_brute(pts: &[Point4]) -> u32 {
    let n = pts.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (pts[i].a, pts[i].b, pts[i].c, pts[i].d));
    let mut dp = vec![0u32; n];
    let mut best = 0;
    for &i in &idx {
        dp[i] = 1;
        for j in 0..n {
            if pts[j].a < pts[i].a
                && pts[j].b < pts[i].b
                && pts[j].c < pts[i].c
                && pts[j].d < pts[i].d
            {
                dp[i] = dp[i].max(dp[j] + 1);
            }
        }
        best = best.max(dp[i]);
    }
    best
}

/// Longest strict-dominance chain, sequential `O(n log^3 n)`: process in
/// `a`-order, querying a 3D max structure over `(b, c, d)` — the
/// appendix's "3D range query" reading, with the processing order
/// standing in for the fourth constraint.
pub fn chain4d_seq(pts: &[Point4]) -> u32 {
    let n = pts.len();
    if n == 0 {
        return 0;
    }
    let (b_slot, b_bound) = slots(|i| pts[i].b, n);
    let (c_slot, c_bound) = slots(|i| pts[i].c, n);
    let (d_slot, d_bound) = slots(|i| pts[i].d, n);
    let mut tree = RangeTree3d::new(&b_slot, &c_slot, &d_slot, PivotMode::RightMost);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| (pts[i as usize].a, i));
    let mut best = 0;
    let mut i0 = 0;
    while i0 < n {
        // Points with equal `a` are mutually incomparable: process the
        // whole tie-group against the pre-group state.
        let mut i1 = i0;
        while i1 < n && pts[order[i1] as usize].a == pts[order[i0] as usize].a {
            i1 += 1;
        }
        let batch: Vec<(u32, u32)> = order[i0..i1]
            .iter()
            .map(|&i| {
                let info = tree.query_prefix(
                    b_bound[i as usize],
                    c_bound[i as usize],
                    d_bound[i as usize],
                );
                let dp = info.max_dp.map_or(1, |d| d + 1);
                (i, dp)
            })
            .collect();
        for &(_, dp) in &batch {
            best = best.max(dp);
        }
        tree.finish_batch(&batch);
        i0 = i1;
    }
    best
}

/// Phase-parallel longest 4D dominance chain (Type 2 over a 4D range
/// tree). The report's `stats.rounds` equals the chain length
/// (round-efficiency, one rank per round).
pub fn chain4d_par(pts: &[Point4], cfg: &RunConfig) -> Report<u32> {
    let (mode, seed) = (cfg.pivot_mode, cfg.seed);
    let n = pts.len();
    if n == 0 {
        return Report::plain(0);
    }
    let (a_slot, a_bound) = slots(|i| pts[i].a, n);
    let (b_slot, b_bound) = slots(|i| pts[i].b, n);
    let (c_slot, c_bound) = slots(|i| pts[i].c, n);
    let (d_slot, d_bound) = slots(|i| pts[i].d, n);
    let tree = RangeTree4d::new(&a_slot, &b_slot, &c_slot, &d_slot, mode);

    struct Problem {
        tree: RangeTree4d,
        qa: Vec<u32>,
        qb: Vec<u32>,
        qc: Vec<u32>,
        qd: Vec<u32>,
        dp: Vec<u32>,
        attempts: Vec<AtomicU32>,
        seed: u64,
        n: usize,
    }

    impl Problem {
        fn probe(&self, x: u32) -> WakeResult<u32> {
            let i = x as usize;
            let (qa, qb, qc, qd) = (self.qa[i], self.qb[i], self.qc[i], self.qd[i]);
            let info = self.tree.query_prefix(qa, qb, qc, qd);
            if info.unfinished == 0 {
                WakeResult::Ready(info.max_dp.map_or(1, |d| d + 1))
            } else {
                let attempt = self.attempts[i].fetch_add(1, Ordering::Relaxed);
                let mut rng = Rng::new(hash64(self.seed, (attempt as u64) << 32 | x as u64));
                let pivot = self
                    .tree
                    .select_pivot(qa, qb, qc, qd, &mut rng)
                    .expect("unfinished predecessor exists");
                WakeResult::Blocked { new_pivot: pivot }
            }
        }
    }

    impl Type2Problem for Problem {
        type Info = u32;
        type Output = (Vec<u32>, u32);

        fn initial_pivots(&self) -> Vec<(u32, u32)> {
            (0..self.n as u32)
                .into_par_iter()
                .filter_map(|x| match self.probe(x) {
                    WakeResult::Ready(_) => None,
                    WakeResult::Blocked { new_pivot } => Some((new_pivot, x)),
                })
                .collect()
        }

        fn initial_frontier(&self) -> Vec<(u32, u32)> {
            (0..self.n as u32)
                .into_par_iter()
                .filter_map(|x| match self.probe(x) {
                    WakeResult::Ready(dp) => Some((x, dp)),
                    WakeResult::Blocked { .. } => None,
                })
                .collect()
        }

        fn try_wake(&self, x: u32) -> WakeResult<u32> {
            self.probe(x)
        }

        fn commit(&mut self, ready: &[(u32, u32)]) {
            for &(x, d) in ready {
                self.dp[x as usize] = d;
            }
            self.tree.finish_batch(ready);
        }

        fn finish(self) -> (Vec<u32>, u32) {
            let best = self.dp.iter().copied().max().unwrap_or(0);
            (self.dp, best)
        }
    }

    let ((_, best), stats, outcome) = run_type2_cancellable(
        Problem {
            tree,
            qa: a_bound,
            qb: b_bound,
            qc: c_bound,
            qd: d_bound,
            dp: vec![0; n],
            attempts: (0..n).map(|_| AtomicU32::new(0)).collect(),
            seed,
            n,
        },
        cfg.cancel.as_ref(),
    );
    Report::new(best, stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng as TRng;

    fn cfg(mode: PivotMode, seed: u64) -> RunConfig {
        RunConfig::seeded(seed).with_pivot_mode(mode)
    }

    fn random_points(n: usize, range: u64, seed: u64) -> Vec<Point4> {
        let mut r = TRng::new(seed);
        (0..n)
            .map(|_| Point4 {
                a: r.range(range) as i64,
                b: r.range(range) as i64,
                c: r.range(range) as i64,
                d: r.range(range) as i64,
            })
            .collect()
    }

    #[test]
    fn all_agree_small() {
        for seed in 0..12 {
            let pts = random_points(70, 25, seed);
            let want = chain4d_brute(&pts);
            assert_eq!(chain4d_seq(&pts), want, "seq seed={seed}");
            assert_eq!(
                chain4d_par(&pts, &cfg(PivotMode::Random, seed)).output,
                want,
                "par/random seed={seed}"
            );
            assert_eq!(
                chain4d_par(&pts, &cfg(PivotMode::RightMost, seed)).output,
                want,
                "par/rightmost seed={seed}"
            );
        }
    }

    #[test]
    fn agree_larger_and_round_efficient() {
        let pts = random_points(1500, 400, 7);
        let want = chain4d_seq(&pts);
        let report = chain4d_par(&pts, &cfg(PivotMode::Random, 8));
        let (got, stats) = (report.output, &report.stats);
        assert_eq!(got, want);
        assert_eq!(stats.rounds as u32, want);
    }

    #[test]
    fn fully_dominating_chain() {
        let pts: Vec<Point4> = (0..150)
            .map(|i| Point4 {
                a: i,
                b: 2 * i,
                c: 3 * i,
                d: -100 + i,
            })
            .collect();
        assert_eq!(chain4d_seq(&pts), 150);
        assert_eq!(chain4d_par(&pts, &cfg(PivotMode::RightMost, 1)).output, 150);
    }

    #[test]
    fn antichain_on_one_coordinate() {
        let pts: Vec<Point4> = (0..80)
            .map(|i| Point4 {
                a: i,
                b: i,
                c: i,
                d: 9, // shared: nothing dominates
            })
            .collect();
        assert_eq!(chain4d_seq(&pts), 1);
        let report = chain4d_par(&pts, &cfg(PivotMode::Random, 2));
        let (got, stats) = (report.output, &report.stats);
        assert_eq!(got, 1);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn chain3d_embeds() {
        // (a, b, c) chains embed as (a, b, c, a).
        let mut r = TRng::new(4);
        let pts3: Vec<crate::chain3d::Point3> = (0..400)
            .map(|_| crate::chain3d::Point3 {
                a: r.range(100) as i64,
                b: r.range(100) as i64,
                c: r.range(100) as i64,
            })
            .collect();
        let pts4: Vec<Point4> = pts3
            .iter()
            .map(|p| Point4 {
                a: p.a,
                b: p.b,
                c: p.c,
                d: p.a,
            })
            .collect();
        assert_eq!(chain4d_seq(&pts4), crate::chain3d::chain3d_seq(&pts3));
        assert_eq!(
            chain4d_par(&pts4, &cfg(PivotMode::Random, 5)).output,
            crate::chain3d::chain3d_seq(&pts3)
        );
    }

    #[test]
    fn empty() {
        assert_eq!(chain4d_seq(&[]), 0);
        assert_eq!(chain4d_par(&[], &cfg(PivotMode::Random, 0)).output, 0);
    }
}
