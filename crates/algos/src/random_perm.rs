//! Parallel random permutation via deterministic reservations.
//!
//! §5.3 of the paper lists *random permutation* (with list ranking and tree
//! contraction) among the sequential iterative algorithms whose dependence
//! structure has constant in-degree and therefore parallelizes directly
//! \[12, 64\]. The sequential algorithm is the Knuth (Fisher–Yates) shuffle:
//!
//! ```text
//! for i = n-1 downto 1: swap(a[i], a[H[i]])   where H[i] ∈ [0, i] uniform
//! ```
//!
//! Iteration `i` depends on the earlier iterations that touch cell `i` or
//! cell `H[i]`; Shun et al. \[64\] show this dependence forest is shallow
//! (`Θ(log n)` depth whp), so the deterministic-reservations driver
//! ([`phase_parallel::reservations`]) finishes in `O(log n)` rounds whp —
//! and, because reservations are priority-ordered by the *sequential*
//! iteration index, it produces **bit-for-bit the sequential shuffle's
//! output** for the same swap targets `H`.
//!
//! This gives the workspace a second, independently-derived permutation
//! primitive; `pp_parlay::shuffle::random_permutation` (sort-based) is used
//! where any permutation will do, while this module is the §5.3
//! "sequential iterative algorithm" reproduction, exercised by tests and
//! the conformance suite.

use phase_parallel::reservations::{
    speculative_for_cancellable, ReservationProblem, ReservationTable,
};
use phase_parallel::{Report, RunConfig};
use pp_parlay::rng::{bounded, hash64};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// The swap targets of a Knuth shuffle: `H[i] ∈ [0, i]` uniform,
/// deterministic per `(seed, i)`.
pub fn swap_targets(n: usize, seed: u64) -> Vec<u32> {
    (0..n)
        .into_par_iter()
        .map(|i| bounded(hash64(seed, i as u64), i as u64 + 1) as u32)
        .collect()
}

/// Sequential Knuth shuffle with explicit swap targets (the reference the
/// parallel version must match exactly).
pub fn knuth_shuffle_seq(n: usize, targets: &[u32]) -> Vec<u32> {
    assert_eq!(n, targets.len());
    let mut a: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        a.swap(i, targets[i] as usize);
    }
    a
}

struct ShuffleProblem<'a> {
    /// `targets[i]` = H[i]; iterate `j` is loop iteration `i = n-1-j` so
    /// that lower iterate index = earlier in sequential order.
    targets: &'a [u32],
    data: Vec<AtomicU32>,
}

impl ShuffleProblem<'_> {
    #[inline]
    fn loop_index(&self, iterate: u32) -> usize {
        self.data.len() - 1 - iterate as usize
    }
}

impl ReservationProblem for ShuffleProblem<'_> {
    fn num_iterates(&self) -> usize {
        // Iteration i = 0 is a no-op (H[0] = 0).
        self.data.len().saturating_sub(1)
    }

    fn reserve(&self, iterate: u32, table: &ReservationTable) {
        let i = self.loop_index(iterate);
        table.reserve(i, iterate);
        table.reserve(self.targets[i] as usize, iterate);
    }

    fn commit(&self, iterate: u32, table: &ReservationTable) -> bool {
        let i = self.loop_index(iterate);
        let h = self.targets[i] as usize;
        if table.holds(i, iterate) && table.holds(h, iterate) {
            // Holding both cells means every earlier iteration touching
            // them has committed, so the swap is the sequential one.
            if i != h {
                let x = self.data[i].load(Ordering::Relaxed);
                let y = self.data[h].load(Ordering::Relaxed);
                self.data[i].store(y, Ordering::Relaxed);
                self.data[h].store(x, Ordering::Relaxed);
            }
            true
        } else {
            false
        }
    }
}

/// Parallel random permutation that equals [`knuth_shuffle_seq`] exactly,
/// randomized by `cfg.seed`.
///
/// The report's `stats.rounds` ≈ the dependence depth (`Θ(log n)` whp);
/// the `"attempts"` counter totals reserve+commit attempts across
/// rounds (the framework's work proxy).
pub fn random_permutation_reservations(n: usize, cfg: &RunConfig) -> Report<Vec<u32>> {
    let targets = swap_targets(n, cfg.seed);
    let problem = ShuffleProblem {
        targets: &targets,
        data: (0..n as u32).map(AtomicU32::new).collect(),
    };
    let table = ReservationTable::new(n);
    let (spec, outcome) = speculative_for_cancellable(&problem, &table, 0, cfg.cancel.as_ref());
    let out = problem
        .data
        .into_iter()
        .map(AtomicU32::into_inner)
        .collect();
    Report::new(out, spec.into()).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(a: &[u32]) -> bool {
        let mut seen = vec![false; a.len()];
        a.iter().all(|&x| {
            let x = x as usize;
            x < seen.len() && !std::mem::replace(&mut seen[x], true)
        })
    }

    #[test]
    fn empty_and_tiny() {
        let cfg = RunConfig::seeded(1);
        assert!(random_permutation_reservations(0, &cfg).output.is_empty());
        assert_eq!(random_permutation_reservations(1, &cfg).output, vec![0]);
        let p2 = random_permutation_reservations(2, &cfg).output;
        assert!(is_permutation(&p2));
    }

    #[test]
    fn matches_sequential_exactly() {
        for n in [2usize, 3, 10, 1000, 50_000] {
            for seed in [0u64, 7, 42] {
                let targets = swap_targets(n, seed);
                let want = knuth_shuffle_seq(n, &targets);
                let got = random_permutation_reservations(n, &RunConfig::seeded(seed)).output;
                assert_eq!(got, want, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        // [64]: dependence depth is Θ(log n) whp. Allow a generous
        // constant; the point is rounds ≪ n.
        let n = 200_000;
        let stats = random_permutation_reservations(n, &RunConfig::seeded(3)).stats;
        assert!(
            stats.rounds <= 8 * (usize::BITS - n.leading_zeros()) as usize,
            "rounds = {} too deep for n = {n}",
            stats.rounds
        );
        // Near-work-efficiency: total attempts stay O(n).
        let attempts = stats.counter("attempts").unwrap();
        assert!(attempts < 8 * n as u64, "attempts = {attempts} blow up");
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_permutation_reservations(1000, &RunConfig::seeded(1)).output;
        let b = random_permutation_reservations(1000, &RunConfig::seeded(2)).output;
        assert!(is_permutation(&a) && is_permutation(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = random_permutation_reservations(30_000, &RunConfig::seeded(9)).output;
        let b = random_permutation_reservations(30_000, &RunConfig::seeded(9)).output;
        assert_eq!(a, b);
    }
}
