//! Longest increasing subsequence (§5.2, Algorithm 3; experiments §6.4).
//!
//! The paper's headline Type 2 result: the first nearly work-efficient
//! (`Õ(n)` work) parallel LIS with round-efficiency (`Õ(k)` span for LIS
//! length `k`), via random pivots over an augmented 2D range tree.
//!
//! * [`lis_seq`] — the classic `O(n log n)` sequential DP baseline.
//! * [`lis_par`] — Algorithm 3 on [`pp_ranges::RangeTree2d`], with the
//!   pivot strategy selectable: [`PivotMode::Random`] (the analyzed one,
//!   Lemma 5.5) or [`PivotMode::RightMost`] (§6.4's heuristic).
//! * [`patterns`] — the segment / line input generators of Fig. 10.
//! * [`reconstruct`] — recover one optimal subsequence from DP values.

mod par;
pub mod patterns;
mod seq;
mod weighted;

pub use par::{lis_par, lis_par_with_dp, lis_weighted_par};
pub use phase_parallel::PivotMode;
pub use seq::{lis_seq, lis_seq_with_dp};
pub use weighted::lis_weighted_seq;

/// Recover one LIS (as indices) from per-element DP values
/// (`dp[i]` = LIS length ending at `i`). `O(n)` backward scan.
pub fn reconstruct(values: &[i64], dp: &[u32]) -> Vec<usize> {
    let k = dp.iter().copied().max().unwrap_or(0);
    let mut out = Vec::with_capacity(k as usize);
    let mut need = k;
    let mut upper = i64::MAX;
    for i in (0..values.len()).rev() {
        if need == 0 {
            break;
        }
        if dp[i] == need && values[i] < upper {
            out.push(i);
            upper = values[i];
            need -= 1;
        }
    }
    out.reverse();
    out
}

/// Brute-force LIS length (tests only; `O(2^n)`-ish via DP is fine but
/// keep it obviously correct: quadratic DP).
pub fn lis_brute(values: &[i64]) -> u32 {
    let n = values.len();
    let mut dp = vec![0u32; n];
    let mut best = 0;
    for i in 0..n {
        dp[i] = 1;
        for j in 0..i {
            if values[j] < values[i] {
                dp[i] = dp[i].max(dp[j] + 1);
            }
        }
        best = best.max(dp[i]);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_parlay::rng::Rng;

    fn cfg(mode: PivotMode, seed: u64) -> phase_parallel::RunConfig {
        phase_parallel::RunConfig::seeded(seed).with_pivot_mode(mode)
    }

    #[test]
    fn fig1_example() {
        // Fig. 1(b): sequence 4 7 3 2 8 1 6 5 — LIS length 3 (e.g. 4 7 8).
        let v = vec![4, 7, 3, 2, 8, 1, 6, 5];
        assert_eq!(lis_brute(&v), 3);
        assert_eq!(lis_seq(&v), 3);
        assert_eq!(lis_par(&v, &cfg(PivotMode::Random, 1)).output, 3);
        assert_eq!(lis_par(&v, &cfg(PivotMode::RightMost, 1)).output, 3);
    }

    #[test]
    fn random_instances_all_agree() {
        let mut r = Rng::new(11);
        for trial in 0..25 {
            let n = 1 + r.range(400) as usize;
            let vals: Vec<i64> = (0..n).map(|_| r.range(100) as i64).collect();
            let want = lis_brute(&vals);
            assert_eq!(lis_seq(&vals), want, "seq trial {trial}");
            assert_eq!(
                lis_par(&vals, &cfg(PivotMode::Random, trial)).output,
                want,
                "par/random trial {trial}"
            );
            assert_eq!(
                lis_par(&vals, &cfg(PivotMode::RightMost, trial)).output,
                want,
                "par/rightmost trial {trial}"
            );
        }
    }

    #[test]
    fn duplicates_are_not_increasing() {
        let v = vec![3, 3, 3, 3];
        assert_eq!(lis_seq(&v), 1);
        assert_eq!(lis_par(&v, &cfg(PivotMode::Random, 0)).output, 1);
        let v = vec![1, 2, 2, 3];
        assert_eq!(lis_seq(&v), 3);
        assert_eq!(lis_par(&v, &cfg(PivotMode::RightMost, 0)).output, 3);
    }

    #[test]
    fn sorted_and_reverse() {
        let v: Vec<i64> = (0..500).collect();
        assert_eq!(lis_seq(&v), 500);
        let res = lis_par(&v, &cfg(PivotMode::RightMost, 0));
        assert_eq!(res.output, 500);
        assert_eq!(res.stats.rounds, 501); // virtual round + k rounds
        let v: Vec<i64> = (0..500).rev().collect();
        assert_eq!(lis_seq(&v), 1);
        let res = lis_par(&v, &cfg(PivotMode::Random, 0));
        assert_eq!(res.output, 1);
        assert_eq!(res.stats.rounds, 2); // virtual round + one frontier
    }

    #[test]
    fn dp_values_match_between_seq_and_par() {
        let mut r = Rng::new(12);
        let vals: Vec<i64> = (0..1000).map(|_| r.range(500) as i64).collect();
        let (_, dp_seq) = lis_seq_with_dp(&vals);
        let report = lis_par_with_dp(&vals, &cfg(PivotMode::Random, 5));
        let (length, dp_par) = report.output;
        assert_eq!(dp_seq, dp_par);
        assert_eq!(length, *dp_seq.iter().max().unwrap());
    }

    #[test]
    fn reconstruction_is_valid_lis() {
        let mut r = Rng::new(13);
        let vals: Vec<i64> = (0..800).map(|_| r.range(300) as i64).collect();
        let (k, dp) = lis_seq_with_dp(&vals);
        let idx = reconstruct(&vals, &dp);
        assert_eq!(idx.len() as u32, k);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.windows(2).all(|w| vals[w[0]] < vals[w[1]]));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(lis_seq(&[]), 0);
        assert_eq!(lis_par(&[], &cfg(PivotMode::Random, 0)).output, 0);
        assert_eq!(lis_seq(&[42]), 1);
        assert_eq!(lis_par(&[42], &cfg(PivotMode::RightMost, 0)).output, 1);
    }

    #[test]
    fn wakeup_attempts_stay_logarithmic() {
        // Lemma 5.5: O(log n) wake-ups per object whp; §6.4 observes ≤ 8.4.
        let mut r = Rng::new(14);
        let n = 5000;
        let vals: Vec<i64> = (0..n).map(|_| r.range(1 << 30) as i64).collect();
        let res = lis_par(&vals, &cfg(PivotMode::Random, 9));
        let avg = res.stats.avg_wakeups();
        assert!(avg < 14.0, "avg wake-ups {avg} too high (log2 n ≈ 12)");
    }
}
