//! Weighted LIS: sequential baseline and tests for the §5.2
//! generalization (the parallel engine lives in [`super::par`]).
//!
//! `dp[i] = w_i + max{0, max_{j<i, a_j<a_i} dp[j]}`; answer = max dp.
//! Rounds of the parallel algorithm still follow the *unweighted* rank
//! (chain length), because readiness depends only on the dependence
//! structure, not the objective.

use pp_ranges::FenwickMax;

/// Maximum total weight of a strictly increasing subsequence,
/// sequentially (`O(n log n)`).
pub fn lis_weighted_seq(values: &[i64], weights: &[u32]) -> u32 {
    assert_eq!(values.len(), weights.len());
    let n = values.len();
    if n == 0 {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut fw = FenwickMax::new(sorted.len());
    let mut best = 0u64;
    for (i, &v) in values.iter().enumerate() {
        let r = sorted.partition_point(|&x| x < v);
        let d = fw.prefix_max(r) + weights[i] as u64;
        fw.update(r, d);
        best = best.max(d);
    }
    u32::try_from(best).expect("weight sums must fit in u32")
}

#[cfg(test)]
mod tests {
    use super::super::{lis_weighted_par, PivotMode};
    use super::*;
    use pp_parlay::rng::Rng;

    fn brute(values: &[i64], weights: &[u32]) -> u32 {
        let n = values.len();
        let mut dp = vec![0u32; n];
        let mut best = 0;
        for i in 0..n {
            dp[i] = weights[i];
            for j in 0..i {
                if values[j] < values[i] {
                    dp[i] = dp[i].max(dp[j] + weights[i]);
                }
            }
            best = best.max(dp[i]);
        }
        best
    }

    #[test]
    fn weighted_matches_brute() {
        let mut r = Rng::new(1);
        for trial in 0..20 {
            let n = 1 + r.range(200) as usize;
            let values: Vec<i64> = (0..n).map(|_| r.range(60) as i64).collect();
            let weights: Vec<u32> = (0..n).map(|_| 1 + r.range(50) as u32).collect();
            let want = brute(&values, &weights);
            assert_eq!(
                lis_weighted_seq(&values, &weights),
                want,
                "seq trial {trial}"
            );
            let cfg = phase_parallel::RunConfig::seeded(trial);
            let (best, dp) = lis_weighted_par(&values, &weights, &cfg).output;
            assert_eq!(best, want, "par trial {trial}");
            // Per-element DP values agree with the quadratic oracle's max.
            assert_eq!(*dp.iter().max().unwrap(), want);
        }
    }

    #[test]
    fn unit_weights_reduce_to_plain_lis() {
        let mut r = Rng::new(2);
        let values: Vec<i64> = (0..500).map(|_| r.range(100) as i64).collect();
        let ones = vec![1u32; values.len()];
        assert_eq!(
            lis_weighted_seq(&values, &ones),
            super::super::lis_seq(&values)
        );
        let cfg = phase_parallel::RunConfig::seeded(3).with_pivot_mode(PivotMode::RightMost);
        let (best, _) = lis_weighted_par(&values, &ones, &cfg).output;
        assert_eq!(best, super::super::lis_seq(&values));
    }

    #[test]
    fn heavy_single_element_beats_long_chain() {
        // A chain of 5 unit weights vs one element of weight 100.
        let values = vec![1i64, 2, 3, 4, 5, 0];
        let weights = vec![1u32, 1, 1, 1, 1, 100];
        assert_eq!(lis_weighted_seq(&values, &weights), 100);
        let report = lis_weighted_par(&values, &weights, &phase_parallel::RunConfig::seeded(4));
        assert_eq!(report.output.0, 100);
        // Rounds still follow the unweighted rank (5 + virtual + ...).
        assert_eq!(report.stats.rounds, 6);
    }

    #[test]
    fn empty_weighted() {
        assert_eq!(lis_weighted_seq(&[], &[]), 0);
        let (best, _) = lis_weighted_par(&[], &[], &phase_parallel::RunConfig::seeded(0)).output;
        assert_eq!(best, 0);
    }
}
