//! The LIS input patterns of §6.4 / Fig. 10.
//!
//! * **Segment pattern**: ~`k` segments, values roughly decreasing inside
//!   a segment and increasing across segments → LIS ≈ `k` (one element
//!   per segment).
//! * **Line pattern**: `a_i = t·i + b_i` with uniform noise `b_i` and a
//!   slightly *negative* slope (see Fig. 10(c)/(d): the band decreases
//!   from ~1.0002·10^8 to ~0.9988·10^8). Increasing subsequences must
//!   live inside an index window of `W ≈ B/|t|` (beyond that the drop
//!   exceeds the noise band `B`), where the values look uniform, giving
//!   LIS ≈ 2√W — so the slope controls the output size.
//!
//! Both are deterministic in their seed. The harness reports the
//! *measured* LIS length (via the sequential baseline) next to the
//! target, exactly like the paper reports output sizes.

use pp_parlay::rng::{bounded, hash64};
use rayon::prelude::*;

/// Segment pattern with ~`k` segments over `n` elements.
pub fn segment(n: usize, k: usize, seed: u64) -> Vec<i64> {
    assert!(k >= 1 && n >= 1);
    let k = k.min(n);
    let seg_len = n.div_ceil(k);
    // Value bands: segment j occupies [j·band, (j+1)·band).
    let band = (1i64 << 42) / k as i64;
    (0..n)
        .into_par_iter()
        .map(|i| {
            let j = i / seg_len;
            let pos = i % seg_len;
            let base = j as i64 * band;
            // Decreasing within the segment, with noise that cannot
            // reorder elements across the decreasing steps' scale.
            let step = (band / (seg_len as i64 + 1)).max(2);
            let noise = bounded(hash64(seed, i as u64), (step / 2).max(1) as u64) as i64;
            base + (seg_len - pos) as i64 * step + noise
        })
        .collect()
}

/// Line pattern: `a_i = slope·i + noise_i`, `noise_i` uniform in
/// `[0, noise)`.
pub fn line(n: usize, slope: i64, noise: u64, seed: u64) -> Vec<i64> {
    assert!(noise >= 1);
    (0..n)
        .into_par_iter()
        .map(|i| slope * i as i64 + bounded(hash64(seed, i as u64), noise) as i64)
        .collect()
}

/// Line pattern tuned so the LIS length is roughly `k` (harness reports
/// the measured value): negative slope `-4B/k²` confines chains to
/// windows of `W = k²/4` indices, where LIS ≈ 2√W = k. The achievable
/// maximum is ≈ 2√n (slope −1); larger targets saturate there.
pub fn line_with_target(n: usize, k: usize, seed: u64) -> Vec<i64> {
    let noise: u64 = 1 << 30;
    let k = k.max(2) as u128;
    let slope = ((4 * noise as u128) / (k * k)).max(1) as i64;
    line(n, -slope, noise, seed)
}

#[cfg(test)]
mod tests {
    use super::super::lis_seq;
    use super::*;

    #[test]
    fn segment_pattern_hits_target() {
        for k in [3usize, 10, 30, 100] {
            let v = segment(20_000, k, 1);
            let measured = lis_seq(&v) as usize;
            assert!(
                measured >= k && measured <= 3 * k + 8,
                "k={k} measured={measured}"
            );
        }
    }

    #[test]
    fn line_pattern_hits_target() {
        let n = 100_000;
        for k in [10u32, 30, 100, 300] {
            let measured = lis_seq(&line_with_target(n, k as usize, 2));
            assert!(
                measured >= k / 3 && measured <= 3 * k,
                "k={k} measured={measured}"
            );
        }
    }

    #[test]
    fn line_pattern_saturates_at_sqrt_n() {
        // Targets beyond ~2√n saturate near the uniform-sequence LIS.
        let n = 10_000;
        let measured = lis_seq(&line_with_target(n, 100_000, 3));
        assert!(measured <= 400, "measured {measured}"); // 2√n = 200 ± slack
    }

    #[test]
    fn deterministic() {
        assert_eq!(segment(1000, 10, 5), segment(1000, 10, 5));
        assert_eq!(line(1000, 3, 100, 5), line(1000, 3, 100, 5));
        assert_ne!(segment(1000, 10, 5), segment(1000, 10, 6));
    }

    #[test]
    fn segment_edge_cases() {
        // k >= n degenerates to increasing-ish data.
        let v = segment(10, 100, 0);
        assert_eq!(v.len(), 10);
        let v = segment(5, 1, 0);
        // One decreasing segment → LIS 1.
        assert_eq!(lis_seq(&v), 1);
    }
}
