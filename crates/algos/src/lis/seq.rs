//! The classic `O(n log n)` sequential LIS — the "Classic seq" baseline
//! of Figs. 8/9 and Table 2 (DP of Eq. (3) with a prefix-max structure
//! over value ranks).

use pp_ranges::FenwickMax;

/// LIS length of `values`.
pub fn lis_seq(values: &[i64]) -> u32 {
    lis_seq_with_dp(values).0
}

/// LIS length plus the per-element DP values (`dp[i]` = LIS length
/// ending at `i`).
pub fn lis_seq_with_dp(values: &[i64]) -> (u32, Vec<u32>) {
    let n = values.len();
    if n == 0 {
        return (0, Vec::new());
    }
    // Coordinate-compress the values.
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let rank = |v: i64| sorted.partition_point(|&x| x < v);
    let mut fw = FenwickMax::new(sorted.len());
    let mut dp = vec![0u32; n];
    let mut best = 0u32;
    for (i, &v) in values.iter().enumerate() {
        let r = rank(v);
        // Max dp among strictly smaller values = prefix [0, r).
        let d = fw.prefix_max(r) as u32 + 1;
        dp[i] = d;
        fw.update(r, d as u64);
        best = best.max(d);
    }
    (best, dp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answers() {
        assert_eq!(lis_seq(&[10, 9, 2, 5, 3, 7, 101, 18]), 4); // 2 3 7 18
        assert_eq!(lis_seq(&[0, 1, 0, 3, 2, 3]), 4);
        assert_eq!(lis_seq(&[7, 7, 7, 7, 7]), 1);
    }

    #[test]
    fn dp_values_shape() {
        let (k, dp) = lis_seq_with_dp(&[1, 3, 2, 4]);
        assert_eq!(k, 3);
        assert_eq!(dp, vec![1, 2, 2, 3]);
    }

    #[test]
    fn negative_values() {
        assert_eq!(lis_seq(&[-5, -3, -4, -1]), 3);
    }
}
