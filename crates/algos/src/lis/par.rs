//! Algorithm 3: the parallel LIS algorithm.
//!
//! Objects are 2D points `(i, a_i)`; the predecessors of an object are
//! exactly the points in its lower-left quadrant (Fig. 3). A virtual
//! point `p[0] = (0, -∞)` with DP value 0 seeds the computation and is
//! every object's initial pivot. Each round, the objects whose pivot
//! just finished are *attempted*: a prefix-rectangle query on the
//! augmented 2D range tree either certifies readiness (no unfinished
//! predecessor — DP value = max DP in the rectangle + 1) or yields a new
//! unfinished pivot (uniformly random, or right-most under the §6.4
//! heuristic).

use phase_parallel::{run_type2_cancellable, Report, RunConfig, Type2Problem, WakeResult};
use pp_parlay::rng::{hash64, Rng};
use pp_ranges::RangeTree2d;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Parallel LIS (Algorithm 3). Deterministic in `cfg.seed` for a fixed
/// schedule; the resulting length is schedule-independent. The report's
/// `stats.rounds` is `k + 1` (one virtual round plus one per rank);
/// Table 2's "Average # of Wake-ups" is `stats.avg_wakeups()`.
pub fn lis_par(values: &[i64], cfg: &RunConfig) -> Report<u32> {
    lis_par_with_dp(values, cfg).map(|(length, _)| length)
}

/// [`lis_par`] also returning per-element DP values: the output is
/// `(length, dp)` where `dp[i]` is the LIS length ending at element `i`.
pub fn lis_par_with_dp(values: &[i64], cfg: &RunConfig) -> Report<(u32, Vec<u32>)> {
    lis_engine(values, None, cfg)
}

/// Weighted LIS (§5.2: "our algorithm can be generalized to the
/// weighted case"): maximize the total *weight* of a strictly
/// increasing subsequence. The rank structure (rounds, pivots) is the
/// unweighted one — only the DP combine changes. Weight sums must fit
/// in `u32`. The output is `(best_weight, dp)`.
pub fn lis_weighted_par(
    values: &[i64],
    weights: &[u32],
    cfg: &RunConfig,
) -> Report<(u32, Vec<u32>)> {
    assert_eq!(values.len(), weights.len());
    lis_engine(values, Some(weights), cfg)
}

fn lis_engine(values: &[i64], weights: Option<&[u32]>, cfg: &RunConfig) -> Report<(u32, Vec<u32>)> {
    let (mode, seed) = (cfg.pivot_mode, cfg.seed);
    let n = values.len();
    if n == 0 {
        return Report::plain((0, Vec::new()));
    }
    assert!(n < u32::MAX as usize - 1);

    // y-slots: virtual point gets slot 0; real point i gets
    // 1 + its rank in (value, index) order. Ties on value are ordered by
    // index, and the *query* bound for object i counts only values
    // strictly below a_i, so duplicates never count as predecessors.
    let mut order: Vec<u32> = (0..n as u32).collect();
    pp_parlay::par_sort_by_key(&mut order, |&i| (values[i as usize], i));
    let mut y_of_x = vec![0u32; n + 1];
    for (slot, &i) in order.iter().enumerate() {
        y_of_x[i as usize + 1] = slot as u32 + 1;
    }
    // qy[i] = 1 + #values strictly below a_i  (the +1 admits the virtual
    // point at slot 0).
    let sorted_vals: Vec<i64> = order.iter().map(|&i| values[i as usize]).collect();
    let qy: Vec<u32> = (0..n)
        .into_par_iter()
        .map(|i| 1 + sorted_vals.partition_point(|&v| v < values[i]) as u32)
        .collect();

    struct Problem<'w> {
        tree: RangeTree2d,
        /// Query bound per real object (indexed by tree-x minus 1).
        qy: Vec<u32>,
        /// DP per tree point (0 = virtual).
        dp: Vec<u32>,
        /// Per-object weights (None = unit weights, the length LIS).
        weights: Option<&'w [u32]>,
        /// Wake-up attempt counter per tree point, for deterministic
        /// per-attempt randomness.
        attempts: Vec<AtomicU32>,
        seed: u64,
        n: usize,
    }

    impl Problem<'_> {
        #[inline]
        fn weight_of(&self, x: u32) -> u32 {
            self.weights.map_or(1, |w| w[x as usize - 1])
        }
    }

    impl Type2Problem for Problem<'_> {
        type Info = u32;
        type Output = (Vec<u32>, u32);

        fn initial_pivots(&self) -> Vec<(u32, u32)> {
            // Every real object initially pivots on the virtual point
            // (Algorithm 3 line 21).
            (1..=self.n as u32).map(|x| (0, x)).collect()
        }

        fn initial_frontier(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)] // the virtual point, DP value 0
        }

        fn try_wake(&self, x: u32) -> WakeResult<u32> {
            let qy = self.qy[x as usize - 1];
            let info = self.tree.query_prefix(x, qy);
            if info.unfinished == 0 {
                // Ready: the rectangle always contains the (finished)
                // virtual point, so max_dp is present.
                let base = info.max_dp.expect("virtual point in range");
                WakeResult::Ready(base + self.weight_of(x))
            } else {
                let attempt = self.attempts[x as usize].fetch_add(1, Ordering::Relaxed);
                let mut rng = Rng::new(hash64(self.seed, (attempt as u64) << 32 | x as u64));
                let pivot = self
                    .tree
                    .select_pivot(x, qy, &mut rng)
                    .expect("unfinished predecessor exists");
                WakeResult::Blocked { new_pivot: pivot }
            }
        }

        fn commit(&mut self, ready: &[(u32, u32)]) {
            for &(x, d) in ready {
                self.dp[x as usize] = d;
            }
            self.tree.finish_batch(ready);
        }

        fn finish(self) -> (Vec<u32>, u32) {
            let best = self.dp[1..].iter().copied().max().unwrap_or(0);
            (self.dp, best)
        }
    }

    let problem = Problem {
        tree: RangeTree2d::new(&y_of_x, mode),
        qy,
        dp: vec![0; n + 1],
        weights,
        attempts: (0..=n).map(|_| AtomicU32::new(0)).collect(),
        seed,
        n,
    };
    let ((dp_all, length), stats, outcome) = run_type2_cancellable(problem, cfg.cancel.as_ref());
    let dp_real: Vec<u32> = dp_all[1..].to_vec();
    Report::new((length, dp_real), stats).with_outcome(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    use phase_parallel::PivotMode;

    #[test]
    fn round_frontiers_follow_ranks() {
        // 1 5 2 6 3 7: dp = 1,2,2,3,3,4 → frontiers are the virtual
        // point, then the rank classes {1}, {5,2}, {6,3}, {7}.
        let v = vec![1, 5, 2, 6, 3, 7];
        let cfg = RunConfig::seeded(0).with_pivot_mode(PivotMode::RightMost);
        let report = lis_par_with_dp(&v, &cfg);
        let (length, dp) = &report.output;
        assert_eq!(*dp, vec![1, 2, 2, 3, 3, 4]);
        assert_eq!(*length, 4);
        assert_eq!(report.stats.rounds, 5);
        assert_eq!(report.stats.frontier_sizes, vec![1, 1, 2, 2, 1]);
    }

    #[test]
    fn pivot_modes_same_answer_different_wakeups() {
        let v: Vec<i64> = (0..2000).map(|i| ((i * 7919) % 4001) as i64).collect();
        let a = lis_par(&v, &RunConfig::seeded(3));
        let b = lis_par(
            &v,
            &RunConfig::seeded(3).with_pivot_mode(PivotMode::RightMost),
        );
        assert_eq!(a.output, b.output);
        // Both should be modest; the heuristic usually needs fewer.
        assert!(a.stats.avg_wakeups() < 16.0);
        assert!(b.stats.avg_wakeups() < 16.0);
    }
}
