//! Greedy (Jones–Plassmann) graph coloring with TAS-tree wake-up (§5.3).
//!
//! The greedy coloring processes vertices in priority order, giving each
//! the smallest color unused by its already-colored neighbors. In the
//! parallel version a vertex is ready once all *higher-priority*
//! neighbors are colored — detected asynchronously by the same TAS-tree
//! mechanism as MIS, which replaces the wake-up strategy of
//! Hasenplaugh et al. and removes their atomic decrement-and-fetch
//! assumption (the §5.3 "Graph Coloring and Matching" discussion).
//!
//! Both implementations produce the *identical* coloring (a function of
//! the priorities alone).

use phase_parallel::{CancelToken, RunOutcome, Scratch, TasForest};
use pp_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Color sentinel for "not yet colored".
const UNCOLORED: u32 = u32::MAX;

/// Per-vertex count of blocking (higher-priority) neighbors — the
/// TAS-tree leaf counts [`coloring_par`] builds its forest from. A pure
/// function of graph + priorities: the preprocessing half of the
/// prepared coloring query.
pub fn blocking_counts(g: &Graph, priority: &[u32]) -> Vec<u32> {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    (0..n as u32)
        .into_par_iter()
        .map(|v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| priority[u as usize] > priority[v as usize])
                .count() as u32
        })
        .collect()
}

/// Sequential greedy coloring in decreasing priority order.
pub fn coloring_seq(g: &Graph, priority: &[u32]) -> Vec<u32> {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(priority[v as usize]));
    let mut color = vec![UNCOLORED; n];
    let mut used = Vec::new();
    for &v in &order {
        used.clear();
        used.resize(g.degree(v) + 1, false);
        for &u in g.neighbors(v) {
            let c = color[u as usize];
            if c != UNCOLORED && (c as usize) < used.len() {
                used[c as usize] = true;
            }
        }
        color[v as usize] = used.iter().position(|&b| !b).unwrap() as u32;
    }
    color
}

/// Asynchronous Jones–Plassmann coloring via TAS trees. Same output as
/// [`coloring_seq`].
pub fn coloring_par(g: &Graph, priority: &[u32]) -> Vec<u32> {
    coloring_par_prepared(
        g,
        priority,
        &blocking_counts(g, priority),
        &mut Scratch::new(),
    )
}

/// The query half of [`coloring_par`]: run the coloring cascades
/// against prebuilt [`blocking_counts`], drawing the color array from
/// `scratch`. Same output as [`coloring_par`] (and [`coloring_seq`]).
pub fn coloring_par_prepared(
    g: &Graph,
    priority: &[u32],
    counts: &[u32],
    scratch: &mut Scratch,
) -> Vec<u32> {
    coloring_par_prepared_cancellable(g, priority, counts, scratch, None).0
}

/// [`coloring_par_prepared`] under an optional deadline. Like the MIS
/// cascades, the poll sits at *cascade-level* granularity: each cascade
/// checks the token between levels and abandons its remaining frontier
/// on a trip. Uncolored vertices keep the `u32::MAX` sentinel and the
/// run is tagged [`RunOutcome::DeadlineExceeded`]; an untripped token
/// leaves the output byte-identical to the plain run.
pub fn coloring_par_prepared_cancellable(
    g: &Graph,
    priority: &[u32],
    counts: &[u32],
    scratch: &mut Scratch,
    cancel: Option<&CancelToken>,
) -> (Vec<u32>, RunOutcome) {
    let n = g.num_vertices();
    assert_eq!(priority.len(), n);
    assert_eq!(counts.len(), n, "counts built for another graph");
    // Leaf index of arc (v → u) in v's tree when u blocks v: the count
    // of blocking neighbors before that slot — recomputable locally, so
    // here we just recompute it at mark time (degree scan is amortized
    // against the mark's O(log) path on sparse graphs; kept simple).
    let forest = TasForest::new(counts);
    let mut color = scratch.take_vec::<AtomicU32>("coloring_color");
    color.resize_with(n, || AtomicU32::new(UNCOLORED));

    struct Ctx<'a> {
        g: &'a Graph,
        priority: &'a [u32],
        forest: TasForest,
        color: &'a [AtomicU32],
        cancel: Option<&'a CancelToken>,
        tripped: AtomicBool,
    }

    impl Ctx<'_> {
        /// Cascade-level poll: latches on the first observed trip.
        fn tripped(&self) -> bool {
            if self.tripped.load(Ordering::Relaxed) {
                return true;
            }
            if phase_parallel::deadline_tripped(self.cancel) {
                self.tripped.store(true, Ordering::Relaxed);
                return true;
            }
            false
        }
    }

    /// Color `v` (all its blocking neighbors are colored) and return the
    /// lower-priority neighbors whose TAS trees this completes.
    fn assign(ctx: &Ctx<'_>, v: u32) -> Vec<u32> {
        // All higher-priority neighbors are colored; take the mex.
        let deg = ctx.g.degree(v);
        let mut used = vec![false; deg + 1];
        for &u in ctx.g.neighbors(v) {
            if ctx.priority[u as usize] > ctx.priority[v as usize] {
                let c = ctx.color[u as usize].load(Ordering::Acquire);
                debug_assert_ne!(c, UNCOLORED, "blocking neighbor uncolored");
                if (c as usize) < used.len() {
                    used[c as usize] = true;
                }
            }
        }
        let mex = used.iter().position(|&b| !b).unwrap() as u32;
        ctx.color[v as usize].store(mex, Ordering::Release);
        // Notify lower-priority neighbors; collect completed trees.
        ctx.g
            .neighbors(v)
            .iter()
            .filter_map(|&w| {
                if ctx.priority[w as usize] < ctx.priority[v as usize] {
                    // v's leaf index in w's tree.
                    let leaf = ctx
                        .g
                        .neighbors(w)
                        .iter()
                        .take_while(|&&x| x != v)
                        .filter(|&&x| ctx.priority[x as usize] > ctx.priority[w as usize])
                        .count();
                    if ctx.forest.mark(w as usize, leaf) {
                        return Some(w);
                    }
                }
                None
            })
            .collect()
    }

    /// Iterative cascade (loop, not recursion, so adversarial
    /// priority chains of depth Θ(n) cannot overflow the stack). The
    /// two level buffers ping-pong so a deep cascade reuses their
    /// capacity instead of collecting a fresh vector per level.
    fn cascade(ctx: &Ctx<'_>, v0: u32) {
        let mut frontier = vec![v0];
        let mut next: Vec<u32> = Vec::new();
        while !frontier.is_empty() {
            if ctx.tripped() {
                return; // abandon the rest of this cascade
            }
            next.clear();
            next.par_extend(frontier.par_iter().flat_map_iter(|&v| assign(ctx, v)));
            std::mem::swap(&mut frontier, &mut next);
        }
    }

    let ctx = Ctx {
        g,
        priority,
        forest,
        color: &color,
        cancel,
        tripped: AtomicBool::new(false),
    };
    (0..n as u32).into_par_iter().for_each(|v| {
        if ctx.forest.leaves_of(v as usize) == 0 && !ctx.tripped() {
            cascade(&ctx, v);
        }
    });
    let outcome = if ctx.tripped.load(Ordering::Relaxed) {
        RunOutcome::DeadlineExceeded
    } else {
        RunOutcome::Completed
    };
    let out = color.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    scratch.put_vec("coloring_color", color);
    (out, outcome)
}

/// Check that `color` is a proper coloring of `g`.
pub fn is_proper_coloring(g: &Graph, color: &[u32]) -> bool {
    (0..g.num_vertices() as u32).all(|v| {
        g.neighbors(v)
            .iter()
            .all(|&u| u == v || color[u as usize] != color[v as usize])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_graph::gen;
    use pp_parlay::shuffle::random_priorities;

    fn check(g: &Graph, seed: u64) {
        let pri = random_priorities(g.num_vertices(), seed);
        let a = coloring_seq(g, &pri);
        let b = coloring_par(g, &pri);
        assert!(is_proper_coloring(g, &a), "seq improper");
        assert_eq!(a, b, "par differs from greedy");
    }

    #[test]
    fn agree_on_many_graphs() {
        check(&gen::uniform(300, 1500, 1), 10);
        check(&gen::cycle(101), 11);
        check(&gen::star(100), 12);
        check(&gen::grid2d(15, 20), 13);
        check(&gen::rmat(9, 4096, 5), 14);
    }

    #[test]
    fn colors_bounded_by_degree_plus_one() {
        let g = gen::uniform(500, 3000, 2);
        let pri = random_priorities(500, 3);
        let c = coloring_par(&g, &pri);
        let dmax = g.max_degree() as u32;
        assert!(c.iter().all(|&x| x <= dmax));
    }

    #[test]
    fn bipartite_grid_two_colorable_greedily_small() {
        // Greedy on a grid uses few colors (not necessarily 2, but ≤ 4).
        let g = gen::grid2d(20, 20);
        let pri = random_priorities(400, 4);
        let c = coloring_par(&g, &pri);
        assert!(is_proper_coloring(&g, &c));
        assert!(*c.iter().max().unwrap() <= 4);
    }

    #[test]
    fn edgeless_all_color_zero() {
        let g = pp_graph::GraphBuilder::new(20).build();
        let pri = random_priorities(20, 5);
        assert!(coloring_par(&g, &pri).iter().all(|&c| c == 0));
    }
}
