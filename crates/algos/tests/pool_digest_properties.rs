//! Property: outputs are **thread-count-independent** under the
//! work-stealing pool.
//!
//! Pool v2 lets any worker steal chunks from any other, so execution
//! order varies wildly with the schedule — but `run_chunks` combines
//! chunk results in chunk order and every family's parallel execution
//! must equal its sequential baseline. These properties pin that down
//! across 1-, 2-, and 8-thread pools (1 = no stealing possible, 2 = one
//! potential thief, 8 = oversubscribed on small CI runners, maximal
//! steal traffic): same instance, same run seed, identical digests.

use pp_algos::registry::{lookup, CaseSpec};
use pp_algos::RunConfig;
use proptest::prelude::*;

/// One family per engine class (Type 1, Type 2, relaxed-rank,
/// reservations), plus the LIS workhorse — enough to cover every
/// parallel-iterator shape the pool schedules without running the whole
/// registry per proptest case.
const FAMILIES: &[&str] = &[
    "lis",
    "knapsack",
    "sssp/delta",
    "coloring",
    "matching/reservations",
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn digests_identical_across_1_2_8_thread_pools(
        family_index in 0usize..5,
        size in 1usize..120,
        case_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
    ) {
        let family = FAMILIES[family_index];
        let entry = lookup(family).expect("family is registered");
        let case = CaseSpec::new(size, case_seed);
        let mut digests = Vec::new();
        for threads in THREAD_COUNTS {
            let cfg = RunConfig::seeded(run_seed).with_threads(threads);
            let outcome = entry.run_case(&case, &cfg);
            prop_assert_eq!(
                outcome.expected_digest,
                outcome.observed_digest,
                "{} diverged from its sequential baseline on {} threads",
                family,
                threads
            );
            digests.push(outcome.observed_digest);
        }
        prop_assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{} digests vary with thread count: {:?}",
            family,
            digests
        );
    }

    // The prepared path under stealing: one instance prepared once,
    // queries answered on 2- and 8-thread pools must reproduce the
    // one-shot digests of the same query configs.
    #[test]
    fn prepared_digests_survive_stealing_pools(
        size in 1usize..80,
        case_seed in 0u64..1_000,
        run_seed in 0u64..1_000,
    ) {
        let entry = lookup("lis").expect("lis is registered");
        let case = CaseSpec::new(size, case_seed);
        let queries: Vec<RunConfig> =
            (0..3).map(|i| RunConfig::seeded(run_seed + i)).collect();
        for threads in [2usize, 8] {
            let cfg = RunConfig::seeded(run_seed).with_threads(threads);
            for (i, outcome) in entry.run_batch(&case, &queries, &cfg).iter().enumerate() {
                prop_assert!(
                    outcome.agrees(),
                    "prepared query {} diverged on {} threads",
                    i,
                    threads
                );
            }
        }
    }
}
