//! Forest depths by Euler-tour tree contraction.
//!
//! Theorem 5.3 of the paper computes the rank of every activity as its
//! depth in the pivot forest "using a standard tree contraction \[18\] in
//! `O(n)` work and `O(log n)` span whp". This module provides that
//! substrate: it reduces forest-depth computation to weighted list ranking
//! on the Euler tour of each tree (+1 entering a vertex, −1 leaving), and
//! ranks the tour with the work-efficient contraction in
//! [`crate::list_contract`].
//!
//! Compared to the pointer-jumping [`crate::list_rank::forest_depths`]
//! (`O(n log d)` work for forest depth `d`), this is `O(n)` expected work —
//! the bound the paper cites — at the price of building the tour. The
//! ablation bench (`pp-bench --bin ablations`) compares the two.

use crate::histogram::group_by_key;
use crate::list_contract::list_rank_contract;
use crate::pack::pack_index;
use rayon::prelude::*;

/// Depth of every node in a forest given parent pointers, via Euler-tour
/// contraction. `parent[i] == i` marks a root (depth 0).
///
/// Produces exactly the same output as
/// [`crate::list_rank::forest_depths`] and
/// [`crate::list_rank::forest_depths_seq`].
///
/// # Panics
/// Panics (in debug builds) on out-of-range parents. A parent *cycle*
/// (invalid forest) gives unspecified but memory-safe output.
pub fn forest_depths_contract(parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(parent.iter().all(|&p| (p as usize) < n));

    // Non-root vertices, in id order; vertex non_roots[q] owns Euler edges
    // `q` (the down edge into it) and `m + q` (the up edge out of it).
    let is_non_root: Vec<bool> = parent
        .par_iter()
        .enumerate()
        .map(|(i, &p)| p as usize != i)
        .collect();
    let non_roots: Vec<usize> = pack_index(&is_non_root);
    let m = non_roots.len();
    if m == 0 {
        return vec![0; n];
    }

    // Stable child lists: children of v are
    // non_roots[perm[offsets[v]..offsets[v+1]]], in id order.
    let keys: Vec<usize> = non_roots.par_iter().map(|&v| parent[v] as usize).collect();
    let (offsets, perm) = group_by_key(&keys, n);

    // down_id[v] = q for non-root v.
    let mut down_id = vec![u32::MAX; n];
    for (q, &v) in non_roots.iter().enumerate() {
        down_id[v] = q as u32;
    }

    // Euler-tour successor pointers over 2m edges; `next[e] == e` = tail.
    // Tour of a tree rooted at r: down(first child of r), ... , up(last
    // child of r).
    let first_child_down = |v: usize| -> Option<u32> {
        if offsets[v] < offsets[v + 1] {
            Some(down_id[non_roots[perm[offsets[v]] as usize]])
        } else {
            None
        }
    };
    let mut next = vec![0u32; 2 * m];
    let mut weight = vec![0i64; 2 * m];
    // The grouped order gives each child its sibling position for free:
    // child at grouped slot j has successor-of-up = down(sibling at j+1).
    next.par_iter_mut()
        .zip(weight.par_iter_mut())
        .enumerate()
        .for_each(|(e, (nx, w))| {
            if e < m {
                // Down edge into v: continue to v's first child, or bounce
                // back up out of v.
                let v = non_roots[e];
                *w = 1;
                *nx = first_child_down(v).unwrap_or(m as u32 + e as u32);
            } else {
                // Up edge out of v: continue to the next sibling, else up
                // out of the parent, else (parent is the root) end.
                let q = e - m;
                let v = non_roots[q];
                let p = parent[v] as usize;
                *w = -1;
                // Position of v in p's child list: the grouped slots hold
                // increasing positions into `non_roots`, and v sits at
                // position q there.
                let j = offsets[p]
                    + perm[offsets[p]..offsets[p + 1]]
                        .binary_search(&(q as u32))
                        .expect("child missing from its parent's child list");
                if j + 1 < offsets[p + 1] {
                    *nx = down_id[non_roots[perm[j + 1] as usize]];
                } else if parent[p] as usize != p {
                    *nx = m as u32 + down_id[p];
                } else {
                    *nx = e as u32; // tail: last child of a root
                }
            }
        });

    // Rank the tour: dist(down(v)) = depth(v) - 1.
    let dist = list_rank_contract(&next, &weight, 0x7ee5_c0de);
    let mut depth = vec![0u32; n];
    depth.par_iter_mut().enumerate().for_each(|(v, d)| {
        if is_non_root[v] {
            *d = (dist[down_id[v] as usize] + 1) as u32;
        }
    });
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_rank::{forest_depths, forest_depths_seq};
    use crate::rng::Rng;

    #[test]
    fn empty() {
        assert!(forest_depths_contract(&[]).is_empty());
    }

    #[test]
    fn single_root() {
        assert_eq!(forest_depths_contract(&[0]), vec![0]);
    }

    #[test]
    fn all_roots() {
        let parent: Vec<u32> = (0..1000).collect();
        assert_eq!(forest_depths_contract(&parent), vec![0u32; 1000]);
    }

    #[test]
    fn chain() {
        let parent = vec![0, 0, 1, 2];
        assert_eq!(forest_depths_contract(&parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn star() {
        let mut parent = vec![0u32; 1000];
        parent[0] = 0;
        let d = forest_depths_contract(&parent);
        assert_eq!(d[0], 0);
        assert!(d[1..].iter().all(|&x| x == 1));
    }

    #[test]
    fn long_chain() {
        let n = 50_000u32;
        let parent: Vec<u32> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let d = forest_depths_contract(&parent);
        for i in 0..n {
            assert_eq!(d[i as usize], i);
        }
    }

    #[test]
    fn multiple_roots() {
        let parent = vec![0, 0, 2, 2, 3];
        assert_eq!(forest_depths_contract(&parent), vec![0, 1, 0, 1, 2]);
    }

    #[test]
    fn random_forests_match_both_references() {
        let mut r = Rng::new(17);
        for n in [1usize, 2, 5, 64, 1000, 30_000] {
            let parent: Vec<u32> = (0..n)
                .map(|i| {
                    if i == 0 || r.range(5) == 0 {
                        i as u32
                    } else {
                        r.range(i as u64) as u32
                    }
                })
                .collect();
            let want = forest_depths_seq(&parent);
            assert_eq!(forest_depths_contract(&parent), want, "n={n} vs seq");
            assert_eq!(forest_depths(&parent), want, "n={n} jump vs seq");
        }
    }

    #[test]
    fn caterpillar() {
        // Spine 0 <- 2 <- 4 <- ... with a leaf hanging off every spine node.
        let n = 20_000;
        let parent: Vec<u32> = (0..n as u32)
            .map(|i| {
                if i % 2 == 0 {
                    i.saturating_sub(2)
                } else {
                    i - 1 // leaf -> its spine node
                }
            })
            .collect();
        let d = forest_depths_contract(&parent);
        for i in (0..n as u32).step_by(2) {
            assert_eq!(d[i as usize], i / 2);
            if i + 1 < n as u32 {
                assert_eq!(d[i as usize + 1], i / 2 + 1);
            }
        }
    }
}
