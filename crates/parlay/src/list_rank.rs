//! Parallel forest depth computation by pointer jumping.
//!
//! The unweighted activity-selection algorithm (Thm 5.3) reduces the DP to
//! a *tree*: each activity depends only on its pivot, and its rank is its
//! depth in the pivot forest. The paper computes depths with `O(n)`-work
//! tree contraction \[18\]; we use pointer jumping (a.k.a. pointer doubling),
//! which is `O(n log d)` work and `O(log d · log n)` span for forest depth
//! `d` — the standard practical substitute, documented as a substitution in
//! DESIGN.md. For the random inputs of the experiments `d = O(rank)` and
//! the extra `log` factor is irrelevant to the measured shapes.

use rayon::prelude::*;

/// Depth of every node in a forest given parent pointers.
///
/// `parent[i] == i` marks a root (depth 0); otherwise `parent[i]` is `i`'s
/// parent and `depth[i] = depth[parent[i]] + 1`.
///
/// # Panics
/// Panics (in debug builds) on out-of-range parents. A parent *cycle*
/// (invalid forest) leads to unspecified but memory-safe output.
pub fn forest_depths(parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    let mut depth: Vec<u32> = parent
        .par_iter()
        .enumerate()
        .map(|(i, &p)| {
            debug_assert!((p as usize) < n);
            u32::from(p as usize != i)
        })
        .collect();
    let mut jump: Vec<u32> = parent.to_vec();
    let mut next_depth = vec![0u32; n];
    let mut next_jump = vec![0u32; n];
    // After k iterations, jump[i] is i's 2^k-th ancestor (clamped at the
    // root) and depth[i] counts the edges traversed so far. At most
    // ceil(log2(max depth)) + 1 iterations are needed.
    loop {
        let changed = next_depth
            .par_iter_mut()
            .zip(next_jump.par_iter_mut())
            .enumerate()
            .map(|(i, (nd, nj))| {
                let j = jump[i] as usize;
                *nd = depth[i] + depth[j];
                *nj = jump[j];
                depth[j] != 0
            })
            .reduce(|| false, |a, b| a || b);
        std::mem::swap(&mut depth, &mut next_depth);
        std::mem::swap(&mut jump, &mut next_jump);
        if !changed {
            break;
        }
    }
    depth
}

/// Depth of every node computed sequentially (reference implementation).
pub fn forest_depths_seq(parent: &[u32]) -> Vec<u32> {
    let n = parent.len();
    let mut depth = vec![u32::MAX; n];
    for i in 0..n {
        if depth[i] != u32::MAX {
            continue;
        }
        // Walk up to a known node or a root, then unwind.
        let mut path = vec![i as u32];
        let mut cur = i;
        loop {
            let p = parent[cur] as usize;
            if p == cur {
                depth[cur] = 0;
                break;
            }
            if depth[p] != u32::MAX {
                break;
            }
            path.push(p as u32);
            cur = p;
        }
        for &node in path.iter().rev() {
            let node = node as usize;
            if depth[node] == u32::MAX {
                depth[node] = depth[parent[node] as usize] + 1;
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn single_root() {
        assert_eq!(forest_depths(&[0]), vec![0]);
    }

    #[test]
    fn chain() {
        // 0 <- 1 <- 2 <- 3
        let parent = vec![0, 0, 1, 2];
        assert_eq!(forest_depths(&parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn star() {
        let mut parent = vec![0u32; 1000];
        parent[0] = 0;
        assert_eq!(forest_depths(&parent)[1..], vec![1u32; 999][..]);
    }

    #[test]
    fn long_chain_large() {
        let n = 100_000u32;
        let parent: Vec<u32> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let d = forest_depths(&parent);
        for i in 0..n {
            assert_eq!(d[i as usize], i);
        }
    }

    #[test]
    fn random_forest_matches_seq() {
        let mut r = Rng::new(5);
        for n in [1usize, 2, 100, 20_000] {
            // parent[i] < i or == i guarantees a DAG (forest).
            let parent: Vec<u32> = (0..n)
                .map(|i| {
                    if i == 0 || r.range(4) == 0 {
                        i as u32
                    } else {
                        r.range(i as u64) as u32
                    }
                })
                .collect();
            assert_eq!(forest_depths(&parent), forest_depths_seq(&parent), "n={n}");
        }
    }

    #[test]
    fn multiple_roots() {
        // Two trees: 0<-1, 2<-3<-4
        let parent = vec![0, 0, 2, 2, 3];
        assert_eq!(forest_depths(&parent), vec![0, 1, 0, 1, 2]);
    }
}
