//! Work-efficient list ranking by random-mate list contraction.
//!
//! The paper's §5.3 names *list ranking* (with random permutation and tree
//! contraction) among the sequential iterative algorithms whose dependence
//! graphs have constant in-degree and therefore parallelize with the Type 2
//! wake-up machinery of \[12, 64\]. This module implements the classic
//! work-efficient scheme those papers build on: repeatedly splice out a
//! constant expected fraction of list nodes chosen by independent per-round
//! coin flips, rank the contracted list directly, then re-insert the spliced
//! nodes in reverse order of removal.
//!
//! Cost: `O(n)` expected work and `O(log^2 n)` span whp (each of the
//! `O(log n)` whp contraction rounds packs the survivors with an
//! `O(log n)`-span scan). The pointer-jumping alternative in
//! [`crate::list_rank`] is `O(n log n)` work — this module removes that
//! log factor, matching the bound the paper cites.
//!
//! A *list* is given by successor pointers: `next[i] == i` marks a tail.
//! Several disjoint lists may share one array; ranking is per list, from
//! each list's head (the unique node no other node points at).

use crate::pack::pack;
use crate::rng::hash64;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, Ordering};

/// Contracted lists shorter than this are ranked by direct traversal.
const BASE: usize = 2048;

/// A splice event: `node` (the spliced-out element) followed `pred` at the
/// time of removal, at edge distance `w_at` from it.
struct Splice {
    pred: u32,
    node: u32,
    w_at: i64,
}

/// Weighted list ranking: `dist[i]` is the sum of edge weights on the path
/// from the head of `i`'s list to `i` (heads get 0).
///
/// `next[i] == i` marks a tail; `weight[i]` is the weight of the edge
/// `i -> next[i]` (ignored for tails). Every node must lie on exactly one
/// simple list — cycles are rejected in debug builds and produce
/// unspecified (memory-safe) output otherwise.
///
/// Deterministic for a fixed `seed` regardless of thread count: coin flips
/// are per-(round, node) hashes, and all concurrent writes go to disjoint
/// slots.
pub fn list_rank_contract(next: &[u32], weight: &[i64], seed: u64) -> Vec<i64> {
    let n = next.len();
    assert_eq!(n, weight.len(), "next/weight length mismatch");
    if n == 0 {
        return Vec::new();
    }
    debug_assert!(next.iter().all(|&s| (s as usize) < n));

    // Mutable successor / edge-weight state, written concurrently but at
    // disjoint indices (see the splice-safety argument below).
    let nxt: Vec<AtomicU32> = next.iter().map(|&s| AtomicU32::new(s)).collect();
    let wgt: Vec<AtomicI64> = weight.iter().map(|&w| AtomicI64::new(w)).collect();
    let removed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    // Heads never get spliced out (no predecessor splices them), so the
    // irreducible residue is exactly one head per list.
    let has_pred: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    next.par_iter().enumerate().for_each(|(i, &s)| {
        if s as usize != i {
            has_pred[s as usize].store(true, Ordering::Relaxed);
        }
    });
    let num_heads = has_pred
        .par_iter()
        .filter(|h| !h.load(Ordering::Relaxed))
        .count();

    let mut active: Vec<u32> = (0..n as u32).collect();
    let mut rounds: Vec<Vec<Splice>> = Vec::new();
    let mut round: u64 = 0;

    while active.len() > BASE.max(num_heads) {
        // A node x with a heads coin splices out its successor y if y's
        // coin is tails. Safety: y cannot splice (tails coin), and y's
        // only possible splicer is its unique predecessor x, so every
        // written slot (nxt[x], wgt[x], removed[y]) has one writer, and
        // the slots read (nxt[y], wgt[y]) are not written this round.
        let heads = |x: u32| hash64(seed ^ round.wrapping_mul(0x9e37_79b9), u64::from(x)) & 1 == 1;
        let splices: Vec<Splice> = active
            .par_iter()
            .filter_map(|&x| {
                if !heads(x) {
                    return None;
                }
                let y = nxt[x as usize].load(Ordering::Relaxed);
                if y == x || heads(y) {
                    return None;
                }
                let w_at = wgt[x as usize].load(Ordering::Relaxed);
                let y_next = nxt[y as usize].load(Ordering::Relaxed);
                if y_next == y {
                    // y was the tail: x becomes the new tail.
                    nxt[x as usize].store(x, Ordering::Relaxed);
                } else {
                    nxt[x as usize].store(y_next, Ordering::Relaxed);
                    wgt[x as usize].store(
                        w_at + wgt[y as usize].load(Ordering::Relaxed),
                        Ordering::Relaxed,
                    );
                }
                removed[y as usize].store(true, Ordering::Relaxed);
                Some(Splice {
                    pred: x,
                    node: y,
                    w_at,
                })
            })
            .collect();
        let alive_flags: Vec<bool> = active
            .par_iter()
            .map(|&x| !removed[x as usize].load(Ordering::Relaxed))
            .collect();
        active = pack(&active, &alive_flags);
        rounds.push(splices);
        round += 1;
        debug_assert!(round <= 64 * (n as u64 + 2), "cycle in input list");
    }

    // Base case: rank every surviving list by direct traversal from its
    // head. Total surviving nodes <= max(BASE, #lists).
    let dist: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
    let survivors_heads: Vec<u32> = active
        .iter()
        .copied()
        .filter(|&x| !has_pred[x as usize].load(Ordering::Relaxed))
        .collect();
    survivors_heads.par_iter().for_each(|&h| {
        let mut cur = h as usize;
        let mut d = 0i64;
        dist[cur].store(0, Ordering::Relaxed);
        loop {
            let s = nxt[cur].load(Ordering::Relaxed) as usize;
            if s == cur {
                break;
            }
            d += wgt[cur].load(Ordering::Relaxed);
            dist[s].store(d, Ordering::Relaxed);
            cur = s;
        }
    });

    // Expansion: undo the rounds last-first. A node spliced in round k had
    // a predecessor that survived round k, so by induction the
    // predecessor's distance is final when round k is undone.
    for splices in rounds.iter().rev() {
        splices.par_iter().for_each(|s| {
            let base = dist[s.pred as usize].load(Ordering::Relaxed);
            dist[s.node as usize].store(base + s.w_at, Ordering::Relaxed);
        });
    }

    dist.into_iter().map(AtomicI64::into_inner).collect()
}

/// Sequential reference: rank every list by walking from its head.
pub fn list_rank_seq(next: &[u32], weight: &[i64]) -> Vec<i64> {
    let n = next.len();
    let mut has_pred = vec![false; n];
    for (i, &s) in next.iter().enumerate() {
        if s as usize != i {
            has_pred[s as usize] = true;
        }
    }
    let mut dist = vec![0i64; n];
    #[allow(clippy::needless_range_loop)] // h is a list head, not an index walk
    for h in 0..n {
        if has_pred[h] {
            continue;
        }
        let mut cur = h;
        let mut d = 0i64;
        loop {
            dist[cur] = d;
            let s = next[cur] as usize;
            if s == cur {
                break;
            }
            d += weight[cur];
            cur = s;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::shuffle::random_permutation;

    /// Build a single list over a random permutation of `0..n`; returns
    /// `(next, weight)`.
    fn random_list(n: usize, seed: u64) -> (Vec<u32>, Vec<i64>) {
        let order = random_permutation(n, seed);
        let mut r = Rng::new(seed ^ 0xabcd);
        let mut next: Vec<u32> = (0..n as u32).collect();
        for w in order.windows(2) {
            next[w[0] as usize] = w[1];
        }
        let weight: Vec<i64> = (0..n).map(|_| r.range(1000) as i64 - 500).collect();
        (next, weight)
    }

    #[test]
    fn empty_and_singleton() {
        assert!(list_rank_contract(&[], &[], 1).is_empty());
        assert_eq!(list_rank_contract(&[0], &[7], 1), vec![0]);
    }

    #[test]
    fn two_elements() {
        // 0 -> 1 with weight 5.
        assert_eq!(list_rank_contract(&[1, 1], &[5, 0], 1), vec![0, 5]);
    }

    #[test]
    fn identity_order_unit_weights() {
        let n = 10_000;
        let next: Vec<u32> = (0..n as u32).map(|i| (i + 1).min(n as u32 - 1)).collect();
        let weight = vec![1i64; n];
        let d = list_rank_contract(&next, &weight, 3);
        for (i, &di) in d.iter().enumerate() {
            assert_eq!(di, i as i64);
        }
    }

    #[test]
    fn random_lists_match_seq() {
        for n in [2usize, 3, 17, 100, 5000, 60_000] {
            for seed in [1u64, 2, 3] {
                let (next, weight) = random_list(n, seed * 31 + n as u64);
                let got = list_rank_contract(&next, &weight, seed);
                let want = list_rank_seq(&next, &weight);
                assert_eq!(got, want, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn many_disjoint_lists() {
        // n/4 lists of length 4 each: i -> i+1 within each block of 4.
        let n = 40_000;
        let next: Vec<u32> = (0..n as u32)
            .map(|i| if i % 4 == 3 { i } else { i + 1 })
            .collect();
        let weight = vec![2i64; n];
        let d = list_rank_contract(&next, &weight, 9);
        for (i, &di) in d.iter().enumerate() {
            assert_eq!(di, 2 * (i % 4) as i64);
        }
    }

    #[test]
    fn all_tails() {
        let n = 5000;
        let next: Vec<u32> = (0..n as u32).collect();
        let weight = vec![1i64; n];
        assert_eq!(list_rank_contract(&next, &weight, 4), vec![0i64; n]);
    }

    #[test]
    fn deterministic_across_runs() {
        let (next, weight) = random_list(30_000, 77);
        let a = list_rank_contract(&next, &weight, 5);
        let b = list_rank_contract(&next, &weight, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn negative_weights() {
        let (next, _) = random_list(1000, 13);
        let weight: Vec<i64> = (0..1000).map(|i| -(i as i64)).collect();
        assert_eq!(
            list_rank_contract(&next, &weight, 2),
            list_rank_seq(&next, &weight)
        );
    }
}
