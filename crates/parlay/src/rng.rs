//! Deterministic, splittable randomness for parallel algorithms.
//!
//! Parallel algorithms in the paper need randomness that is *independent of
//! scheduling order*: MIS assigns each vertex a random priority, LIS picks
//! a uniformly random unfinished pivot, and the shuffle assigns each index
//! a random sort key. The standard trick (used by ParlayLib) is a strong
//! 64-bit mixing function applied to `(seed, index)` so every index gets an
//! i.i.d.-looking value with no shared state and no synchronization.
//!
//! We use the SplitMix64 finalizer, which passes BigCrush when used as a
//! mixer, plus a small stateful [`Rng`] for sequential call sites.

/// SplitMix64 mixing step: a bijective 64-bit finalizer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a `(seed, index)` pair to a pseudo-random 64-bit value.
///
/// Distinct `(seed, i)` pairs give independent-looking outputs; the same
/// pair always gives the same output, so parallel algorithms using this are
/// deterministic regardless of the scheduler.
#[inline]
pub fn hash64(seed: u64, i: u64) -> u64 {
    mix64(seed ^ mix64(i.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Map a 64-bit random value to a uniform `f64` in `[0, 1)` (top 53
/// bits become the mantissa). The one canonical copy of the shift
/// constant — generators needing continuous draws go through this.
#[inline]
pub fn unit_f64(r: u64) -> f64 {
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a 64-bit random value to `[0, bound)` without modulo bias
/// (Lemire's multiply-shift reduction; the bias is < 2^-32 for bounds
/// below 2^32, negligible for our use).
#[inline]
pub fn bounded(r: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((r as u128 * bound as u128) >> 64) as u64
}

/// A small, fast sequential PRNG (SplitMix64 stream).
///
/// Use [`hash64`] instead inside parallel loops.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed ^ 0xD1B5_4A32_D192_ED03),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform value in `[0, bound)`. `bound` must be positive.
    #[inline]
    pub fn range(&mut self, bound: u64) -> u64 {
        bounded(self.next_u64(), bound)
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    #[inline]
    pub fn range_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.range(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Sample from a standard normal distribution (Box–Muller transform).
    ///
    /// Used by the activity-selection workload generator, which draws
    /// activity lengths from a truncated normal distribution (§6.1).
    pub fn normal(&mut self) -> f64 {
        // Avoid log(0) by shifting u1 away from zero.
        let u1 = unit_f64(self.next_u64()).max(1e-300);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Sample from an exponential distribution with rate `lambda`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        let u = self.f64().max(1e-300);
        -u.ln() / lambda
    }

    /// Fork an independent generator (for handing to a subtask).
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn hash64_deterministic_and_spread() {
        assert_eq!(hash64(1, 2), hash64(1, 2));
        assert_ne!(hash64(1, 2), hash64(1, 3));
        assert_ne!(hash64(1, 2), hash64(2, 2));
        // Crude avalanche check: flipping one input bit flips ~half the output bits.
        let a = hash64(7, 100);
        let b = hash64(7, 101);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }

    #[test]
    fn bounded_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range(10);
            assert!(v < 10);
        }
        for _ in 0..1000 {
            let v = r.range_in(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn bounded_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.range(8) as usize] += 1;
        }
        for &c in &counts {
            // expectation 10_000; allow ±5%
            assert!((9500..=10500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let v = r.normal();
            s += v;
            s2 += v * v;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(17);
        let n = 50_000;
        let lambda = 2.0;
        let mut s = 0.0;
        for _ in 0..n {
            s += r.exponential(lambda);
        }
        let mean = s / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn split_streams_differ() {
        let mut a = Rng::new(1);
        let mut b = a.split();
        let mut c = a.split();
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
