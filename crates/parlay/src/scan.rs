//! Parallel reduce and prefix sums (scans) over slices.
//!
//! The classic two-pass blocked algorithm: split the input into `O(P)`
//! blocks, reduce each block in parallel, sequentially scan the per-block
//! sums, then expand each block in parallel. Work `O(n)`, span
//! `O(n / P + P)` which is `O(log n)`-ish for the block counts we pick —
//! faithful in spirit to the binary-forking model of §2.

use crate::monoid::Monoid;
use crate::{div_ceil, GRAIN};
use rayon::prelude::*;

/// Parallel reduction of `input` under monoid `m`.
pub fn reduce<M: Monoid>(m: &M, input: &[M::T]) -> M::T {
    if input.len() <= GRAIN {
        return reduce_seq(m, input);
    }
    let nblocks = (rayon::current_num_threads() * 8).min(div_ceil(input.len(), GRAIN));
    let block = div_ceil(input.len(), nblocks);
    input
        .par_chunks(block)
        .map(|c| reduce_seq(m, c))
        .reduce(|| m.identity(), |a, b| m.combine(&a, &b))
}

fn reduce_seq<M: Monoid>(m: &M, input: &[M::T]) -> M::T {
    let mut acc = m.identity();
    for x in input {
        m.combine_into(&mut acc, x);
    }
    acc
}

/// Parallel *exclusive* scan. Returns `(prefix, total)` where
/// `prefix[i] = combine(input[0..i])` and `total = combine(input[0..n])`.
pub fn scan_exclusive<M: Monoid>(m: &M, input: &[M::T]) -> (Vec<M::T>, M::T) {
    let mut out = Vec::new();
    let total = scan_exclusive_into(m, input, &mut out);
    (out, total)
}

/// Allocation-free [`scan_exclusive`]: the prefix is written into `out`
/// (cleared first, capacity reused) and the total is returned. The hot
/// round loops (frontier edge-balancing, bucket routing) call this with
/// a scratch-recycled buffer so steady-state queries never reallocate
/// the prefix array.
pub fn scan_exclusive_into<M: Monoid>(m: &M, input: &[M::T], out: &mut Vec<M::T>) -> M::T {
    let n = input.len();
    out.clear();
    if n == 0 {
        return m.identity();
    }
    if n <= GRAIN {
        out.reserve(n);
        let mut acc = m.identity();
        for x in input {
            out.push(acc.clone());
            m.combine_into(&mut acc, x);
        }
        return acc;
    }
    let nblocks = (rayon::current_num_threads() * 8).min(div_ceil(n, GRAIN));
    let block = div_ceil(n, nblocks);

    // Pass 1: per-block sums.
    let sums: Vec<M::T> = input.par_chunks(block).map(|c| reduce_seq(m, c)).collect();

    // Sequential scan over the (small) block sums.
    let mut offsets = Vec::with_capacity(sums.len());
    let mut acc = m.identity();
    for s in &sums {
        offsets.push(acc.clone());
        m.combine_into(&mut acc, s);
    }
    let total = acc;

    // Pass 2: expand each block (every slot rewritten below).
    out.resize(n, m.identity());
    out.par_chunks_mut(block)
        .zip(input.par_chunks(block))
        .zip(offsets.into_par_iter())
        .for_each(|((ochunk, ichunk), off)| {
            let mut acc = off;
            for (o, x) in ochunk.iter_mut().zip(ichunk) {
                *o = acc.clone();
                m.combine_into(&mut acc, x);
            }
        });
    total
}

/// Parallel *inclusive* scan: `out[i] = combine(input[0..=i])`.
pub fn scan_inclusive<M: Monoid>(m: &M, input: &[M::T]) -> Vec<M::T> {
    let (mut out, _) = scan_exclusive(m, input);
    out.par_iter_mut()
        .with_min_len(GRAIN)
        .zip(input.par_iter())
        .for_each(|(o, x)| *o = m.combine(o, x));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{sum_monoid, MaxMonoid};

    #[test]
    fn reduce_small_and_large() {
        let m = sum_monoid::<u64>();
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(reduce(&m, &v), 5050);
        let big: Vec<u64> = (0..100_000).collect();
        assert_eq!(reduce(&m, &big), 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn reduce_empty() {
        let m = sum_monoid::<u64>();
        assert_eq!(reduce(&m, &[]), 0);
    }

    #[test]
    fn scan_exclusive_matches_sequential() {
        let m = sum_monoid::<u64>();
        for n in [0usize, 1, 2, 100, 4096, 4097, 50_000] {
            let v: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
            let (scan, total) = scan_exclusive(&m, &v);
            let mut acc = 0u64;
            for i in 0..n {
                assert_eq!(scan[i], acc, "n={n} i={i}");
                acc += v[i];
            }
            assert_eq!(total, acc, "n={n}");
        }
    }

    #[test]
    fn scan_inclusive_matches() {
        let m = sum_monoid::<u64>();
        let v: Vec<u64> = (0..30_000).map(|i| i % 7).collect();
        let inc = scan_inclusive(&m, &v);
        let mut acc = 0;
        for i in 0..v.len() {
            acc += v[i];
            assert_eq!(inc[i], acc);
        }
    }

    #[test]
    fn scan_exclusive_into_reuses_capacity() {
        let m = sum_monoid::<u64>();
        let v: Vec<u64> = (0..10_000).collect();
        let mut out = Vec::new();
        let total = scan_exclusive_into(&m, &v, &mut out);
        assert_eq!(total, v.iter().sum::<u64>());
        assert_eq!(out[3], 3);
        let cap = out.capacity();
        let total = scan_exclusive_into(&m, &v[..5_000], &mut out);
        assert_eq!(out.capacity(), cap, "second scan must reuse the buffer");
        assert_eq!(out.len(), 5_000);
        assert_eq!(total, v[..5_000].iter().sum::<u64>());
    }

    #[test]
    fn scan_max_monoid() {
        let m = MaxMonoid(i64::MIN);
        let v: Vec<i64> = vec![3, -1, 7, 2, 7, 100, -5];
        let inc = scan_inclusive(&m, &v);
        assert_eq!(inc, vec![3, 3, 7, 7, 7, 100, 100]);
    }
}
