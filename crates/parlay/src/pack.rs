//! Parallel pack (filter by flags) and index packing.
//!
//! `pack` is the workhorse of every round-based algorithm in the paper:
//! "Pack points marked as next_frontier into frontier*" (Algorithm 3,
//! line 34) is exactly [`pack`]. Implementation: a scan over 0/1 flags
//! gives each surviving element its output slot; a second parallel pass
//! writes them. Work `O(n)`, polylogarithmic span.

use crate::monoid::sum_monoid;
use crate::scan::scan_exclusive;
use crate::GRAIN;
use rayon::prelude::*;

/// Keep `items[i]` where `flags[i]` is true, preserving order.
///
/// # Panics
/// Panics if `items.len() != flags.len()`.
pub fn pack<T: Clone + Send + Sync>(items: &[T], flags: &[bool]) -> Vec<T> {
    let mut out = Vec::new();
    pack_into(items, flags, &mut out);
    out
}

/// Allocation-free [`pack`]: survivors are written into `out` (cleared
/// first, capacity reused), so round loops that pack every round can
/// recycle one buffer instead of collecting a fresh vector.
///
/// # Panics
/// Panics if `items.len() != flags.len()`.
pub fn pack_into<T: Clone + Send + Sync>(items: &[T], flags: &[bool], out: &mut Vec<T>) {
    assert_eq!(items.len(), flags.len());
    let n = items.len();
    out.clear();
    if n <= GRAIN {
        out.extend(
            items
                .iter()
                .zip(flags)
                .filter(|(_, &f)| f)
                .map(|(x, _)| x.clone()),
        );
        return;
    }
    let ones: Vec<usize> = flags
        .par_iter()
        .with_min_len(GRAIN)
        .map(|&f| f as usize)
        .collect();
    let m = sum_monoid::<usize>();
    let (offsets, total) = scan_exclusive(&m, &ones);
    out.reserve(total);
    let out_ptr = SendPtr(out.as_mut_ptr());
    (0..n).into_par_iter().with_min_len(GRAIN).for_each(|i| {
        if flags[i] {
            // SAFETY: each true flag maps to a unique slot `offsets[i] < total`
            // (exclusive scan of the flags), and `out` has capacity `total`.
            unsafe {
                out_ptr.get().add(offsets[i]).write(items[i].clone());
            }
        }
    });
    // SAFETY: all `total` slots were written exactly once above.
    unsafe { out.set_len(total) };
}

/// Indices `i` with `flags[i]` true, in increasing order.
pub fn pack_index(flags: &[bool]) -> Vec<usize> {
    let mut out = Vec::new();
    pack_index_into(flags, &mut out);
    out
}

/// Allocation-free [`pack_index`]: indices land in `out` (cleared
/// first, capacity reused).
pub fn pack_index_into(flags: &[bool], out: &mut Vec<usize>) {
    let n = flags.len();
    out.clear();
    if n <= GRAIN {
        out.extend(flags.iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| i));
        return;
    }
    let ones: Vec<usize> = flags
        .par_iter()
        .with_min_len(GRAIN)
        .map(|&f| f as usize)
        .collect();
    let m = sum_monoid::<usize>();
    let (offsets, total) = scan_exclusive(&m, &ones);
    out.reserve(total);
    let out_ptr = SendPtr(out.as_mut_ptr());
    (0..n).into_par_iter().with_min_len(GRAIN).for_each(|i| {
        if flags[i] {
            // SAFETY: unique slot per true flag, capacity `total` (see `pack`).
            unsafe {
                out_ptr.get().add(offsets[i]).write(i);
            }
        }
    });
    // SAFETY: all `total` slots written exactly once.
    unsafe { out.set_len(total) };
}

/// Parallel filter: `items` where `pred` holds, preserving order.
pub fn filter<T, F>(items: &[T], pred: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    // `&pred` (a `Copy` reference) satisfies the shim's `Clone` bound
    // without requiring it of callers.
    let flags: Vec<bool> = items.par_iter().with_min_len(GRAIN).map(&pred).collect();
    pack(items, &flags)
}

/// A raw pointer wrapper asserting cross-thread use is safe because every
/// thread writes a disjoint slot (guaranteed by the exclusive scan).
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
// SAFETY: the exclusive scan hands every thread a disjoint slot range,
// so concurrent writes through the shared pointer never alias.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor method (rather than field access) so closures capture the
    /// whole `Sync` wrapper instead of the raw pointer field.
    #[inline]
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_small() {
        let items = vec![10, 20, 30, 40];
        let flags = vec![true, false, true, false];
        assert_eq!(pack(&items, &flags), vec![10, 30]);
    }

    #[test]
    fn pack_large_matches_sequential() {
        let n = 50_000;
        let items: Vec<u64> = (0..n as u64).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let got = pack(&items, &flags);
        let want: Vec<u64> = items
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f)
            .map(|(&x, _)| x)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_index_large() {
        let n = 30_000;
        let flags: Vec<bool> = (0..n).map(|i| i % 7 == 2).collect();
        let got = pack_index(&flags);
        let want: Vec<usize> = (0..n).filter(|i| i % 7 == 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_all_and_none() {
        let items: Vec<u32> = (0..10_000).collect();
        let all = vec![true; items.len()];
        let none = vec![false; items.len()];
        assert_eq!(pack(&items, &all), items);
        assert!(pack(&items, &none).is_empty());
    }

    #[test]
    fn filter_preserves_order() {
        let items: Vec<i32> = (0..20_000).map(|i| (i * 7919) % 1000).collect();
        let got = filter(&items, |&x| x < 100);
        let want: Vec<i32> = items.iter().copied().filter(|&x| x < 100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_into_reuses_capacity() {
        let n = 50_000;
        let items: Vec<u64> = (0..n as u64).collect();
        let flags: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut out = Vec::new();
        pack_into(&items, &flags, &mut out);
        assert_eq!(out.len(), n / 2);
        let cap = out.capacity();
        pack_into(&items, &flags, &mut out);
        assert_eq!(out.capacity(), cap, "second pack must reuse the buffer");
        let mut idx = Vec::new();
        pack_index_into(&flags, &mut idx);
        assert_eq!(idx.len(), n / 2);
        assert_eq!(idx[1], 2);
    }

    #[test]
    fn pack_empty() {
        let items: Vec<u8> = vec![];
        let flags: Vec<bool> = vec![];
        assert!(pack(&items, &flags).is_empty());
        assert!(pack_index(&flags).is_empty());
    }
}
