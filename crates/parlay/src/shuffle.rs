//! Parallel random permutations.
//!
//! Used to assign the random priorities of the greedy MIS algorithm (§5.3:
//! "assigning each vertex a random priority") and by workload generators.
//!
//! Implementation: assign each index a deterministic random 64-bit key via
//! [`crate::rng::hash64`] and sort the `(key, index)` pairs in parallel.
//! `O(n log n)` work, polylog span, and — crucially for reproducibility —
//! the output depends only on the seed, never on the schedule. (The paper
//! cites the `O(n)`-work sequential-random-permutation parallelization of
//! Shun et al. \[64\]; sort-by-random-key preserves the uniform-permutation
//! distribution, which is the only property the algorithms rely on.)

use crate::rng::hash64;
use crate::sort::par_sort_by_key;
use rayon::prelude::*;

/// A uniformly random permutation of `0..n`, deterministic in `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(
        n <= u32::MAX as usize,
        "permutation indices must fit in u32"
    );
    let mut pairs: Vec<(u64, u32)> = (0..n as u32)
        .into_par_iter()
        // The index is the tiebreaker, so duplicate keys (probability
        // ~n^2/2^64) still yield a valid permutation.
        .map(|i| (hash64(seed, i as u64), i))
        .collect();
    par_sort_by_key(&mut pairs, |&(k, i)| (k, i));
    pairs.into_par_iter().map(|(_, i)| i).collect()
}

/// Random priorities: `priority[v]` is the rank of `v` in a uniformly
/// random permutation. Higher value = higher priority.
pub fn random_priorities(n: usize, seed: u64) -> Vec<u32> {
    let perm = random_permutation(n, seed);
    let mut pri = vec![0u32; n];
    // Inverse permutation, written in parallel via unique slots.
    let ptr = crate::pack::SendPtr(pri.as_mut_ptr());
    (0..n).into_par_iter().for_each(|i| {
        // SAFETY: `perm` is a permutation, so each slot written once.
        unsafe { ptr.get().add(perm[i] as usize).write(i as u32) }
    });
    pri
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_permutation() {
        for n in [0usize, 1, 10, 10_000] {
            let p = random_permutation(n, 42);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(!seen[x as usize]);
                seen[x as usize] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_permutation(1000, 7), random_permutation(1000, 7));
        assert_ne!(random_permutation(1000, 7), random_permutation(1000, 8));
    }

    #[test]
    fn roughly_uniform_first_element() {
        // First element should be roughly uniform over 0..n across seeds.
        let n = 16;
        let trials = 8000;
        let mut counts = vec![0usize; n];
        for s in 0..trials {
            counts[random_permutation(n, s as u64)[0] as usize] += 1;
        }
        let expected = trials / n;
        for &c in &counts {
            assert!(
                c > expected / 2 && c < expected * 2,
                "count {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn priorities_are_permutation_ranks() {
        let n = 5000;
        let mut sorted = random_priorities(n, 3);

        sorted.sort_unstable();
        let want: Vec<u32> = (0..n as u32).collect();
        assert_eq!(sorted, want);
    }
}
