//! Parallel stable merge sort.
//!
//! `O(n log n)` work, polylogarithmic span, built on [`crate::merge`].
//! This is the sort assumed throughout the paper (e.g. Huffman tree
//! preprocessing "is dominated by sorting all input frequencies", §4.3,
//! and the PA-BST construction theorem, Thm 2.1).

use crate::merge::par_merge_by;
use crate::GRAIN;

/// Sort a slice in parallel under `Ord`, stably.
pub fn par_sort<T: Clone + Send + Sync + Ord>(v: &mut [T]) {
    par_sort_by(v, |a, b| a < b);
}

/// Sort a slice in parallel by a strict-less comparison, stably.
pub fn par_sort_by<T, F>(v: &mut [T], less: F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync,
{
    let n = v.len();
    if n <= GRAIN {
        v.sort_by(|a, b| {
            if less(a, b) {
                std::cmp::Ordering::Less
            } else if less(b, a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        return;
    }
    let mut buf = v.to_vec();
    // After sort_rec, the sorted result is in `v` (copy_back = true).
    sort_rec(v, &mut buf[..], &less, true);
}

/// Sort by a key-extraction function, stably.
pub fn par_sort_by_key<T, K, F>(v: &mut [T], key: F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Send + Sync,
{
    par_sort_by(v, move |a, b| key(a) < key(b));
}

/// Recursive merge sort: sorts `data`; `into_data` says whether the result
/// must land in `data` (true) or in `buf` (false). Alternating the target
/// halves the number of copies.
fn sort_rec<T, F>(data: &mut [T], buf: &mut [T], less: &F, into_data: bool)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync,
{
    let n = data.len();
    if n <= GRAIN {
        data.sort_by(|a, b| {
            if less(a, b) {
                std::cmp::Ordering::Less
            } else if less(b, a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        if !into_data {
            buf.clone_from_slice(data);
        }
        return;
    }
    let mid = n / 2;
    let (d_lo, d_hi) = data.split_at_mut(mid);
    let (b_lo, b_hi) = buf.split_at_mut(mid);
    rayon::join(
        || sort_rec(d_lo, b_lo, less, !into_data),
        || sort_rec(d_hi, b_hi, less, !into_data),
    );
    // The sorted halves now live in buf (if into_data) or data (if not);
    // merge them into the requested target.
    if into_data {
        par_merge_by(b_lo, b_hi, data, less);
    } else {
        par_merge_by(d_lo, d_hi, buf, less);
    }
}

/// Check whether `v` is sorted under `less` (no inversion `less(v[i+1], v[i])`).
pub fn is_sorted_by<T, F: Fn(&T, &T) -> bool>(v: &[T], less: F) -> bool {
    v.windows(2).all(|w| !less(&w[1], &w[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn sorts_small() {
        let mut v = vec![5, 3, 8, 1, 9, 2];
        par_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn sorts_large_random() {
        let mut r = Rng::new(99);
        for n in [4097usize, 20_000, 123_456] {
            let mut v: Vec<u64> = (0..n).map(|_| r.range(1_000_000)).collect();
            let mut want = v.clone();
            want.sort();
            par_sort(&mut v);
            assert_eq!(v, want, "n={n}");
        }
    }

    #[test]
    fn sorts_already_sorted_and_reverse() {
        let mut v: Vec<u32> = (0..50_000).collect();
        par_sort(&mut v);
        assert!(is_sorted_by(&v, |a, b| a < b));
        let mut v: Vec<u32> = (0..50_000).rev().collect();
        par_sort(&mut v);
        assert!(is_sorted_by(&v, |a, b| a < b));
        assert_eq!(v[0], 0);
        assert_eq!(v[49_999], 49_999);
    }

    #[test]
    fn stable_on_equal_keys() {
        // (key, original index): equal keys must preserve index order.
        let n = 30_000usize;
        let mut v: Vec<(u32, usize)> = (0..n).map(|i| ((i % 10) as u32, i)).collect();
        par_sort_by(&mut v, |a, b| a.0 < b.0);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "instability at key {}", w[0].0);
            }
        }
    }

    #[test]
    fn sort_by_key() {
        let mut v: Vec<(u64, &str)> = vec![(3, "c"), (1, "a"), (2, "b")];
        par_sort_by_key(&mut v, |x| x.0);
        assert_eq!(
            v.iter().map(|x| x.1).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn sorts_all_equal() {
        let mut v = vec![7u8; 20_000];
        par_sort(&mut v);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn sorts_empty_and_single() {
        let mut v: Vec<i32> = vec![];
        par_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![42];
        par_sort(&mut v);
        assert_eq!(v, vec![42]);
    }
}
