//! Parallel stable LSD radix sort for integer keys.
//!
//! The comparison sort in [`crate::sort`] is the general-purpose
//! workhorse; several substrates sort *small integer keys* (graph edges
//! by endpoint, Huffman leaves by frequency, activity slots, compressed
//! coordinates), where an `O(passes · n)`-work counting sort wins. This
//! is ParlayLib's `integer_sort` shape: per pass, chunked parallel
//! histograms, an exclusive scan over the (chunk × bucket) count matrix,
//! and a stable parallel scatter — `O(n)` work per 8-bit digit pass and
//! `O(log n)` span per pass in the binary-forking model.
//!
//! Stability matters: the tree/tour builders rely on equal keys keeping
//! their input order (the same reason Theorem 2.1 asks for stable batch
//! construction).

use rayon::prelude::*;

/// Digit width in bits; 256 buckets keeps per-chunk count arrays in L1.
const DIGIT_BITS: usize = 8;
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Sequential threshold: below this, delegate to a plain stable sort.
const SEQ_CUTOFF: usize = 1 << 14;

/// A raw destination shared across scatter workers. Soundness: the
/// offset matrix assigns every (chunk, bucket) pair a disjoint output
/// range, so no two workers ever write the same index.
struct SharedOut<T>(*mut T);
// SAFETY: the offset matrix gives every (chunk, bucket) pair a disjoint
// output range, so no two workers ever write the same index.
unsafe impl<T: Send> Send for SharedOut<T> {}
unsafe impl<T: Send> Sync for SharedOut<T> {}

/// Stable sort of `v` by a `u64` key using `key_bits` low bits
/// (`key_bits ≤ 64`; pass exactly the bits you need — e.g. 32 for `u32`
/// keys — to halve the pass count).
pub fn radix_sort_by_key<T, F>(v: &mut [T], key_bits: usize, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u64 + Sync,
{
    assert!(key_bits <= 64);
    let n = v.len();
    if n <= 1 {
        return;
    }
    if n < SEQ_CUTOFF {
        v.sort_by_key(|t| key(t));
        return;
    }
    let passes = key_bits.div_ceil(DIGIT_BITS);
    let mut buf: Vec<T> = Vec::with_capacity(n);
    // SAFETY: every element of `buf` is written by the first scatter pass
    // before any read; `T: Copy` so skipped drops are fine.
    #[allow(clippy::uninit_vec)]
    unsafe {
        buf.set_len(n);
    }
    let chunk = (n / (rayon::current_num_threads() * 4).max(1)).max(SEQ_CUTOFF / 4);
    let num_chunks = n.div_ceil(chunk);

    let mut src_is_v = true;
    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        let (src, dst): (&[T], &mut [T]) = if src_is_v {
            (&*v, &mut buf[..])
        } else {
            (&*buf, &mut v[..])
        };
        // 1. Per-chunk digit histograms.
        let counts: Vec<[u32; BUCKETS]> = src
            .par_chunks(chunk)
            .map(|ch| {
                let mut local = [0u32; BUCKETS];
                for t in ch {
                    local[((key(t) >> shift) as usize) & (BUCKETS - 1)] += 1;
                }
                local
            })
            .collect();
        // 2. Exclusive scan in bucket-major order: chunk c's bucket b
        // starts after all smaller buckets and after bucket b of all
        // earlier chunks — exactly the stable order.
        let mut offsets = vec![[0u32; BUCKETS]; num_chunks];
        let mut acc = 0u32;
        for b in 0..BUCKETS {
            for c in 0..num_chunks {
                offsets[c][b] = acc;
                acc += counts[c][b];
            }
        }
        debug_assert_eq!(acc as usize, n);
        // 3. Stable parallel scatter: chunk-local cursors walk disjoint
        // output ranges.
        let out = SharedOut(dst.as_mut_ptr());
        src.par_chunks(chunk)
            .zip(offsets.into_par_iter())
            .for_each(|(ch, mut cursor)| {
                let out = &out;
                for t in ch {
                    let b = ((key(t) >> shift) as usize) & (BUCKETS - 1);
                    // SAFETY: disjointness per the offset matrix.
                    unsafe {
                        *out.0.add(cursor[b] as usize) = *t;
                    }
                    cursor[b] += 1;
                }
            });
        src_is_v = !src_is_v;
    }
    if !src_is_v {
        // Result currently lives in `buf`.
        v.par_iter_mut()
            .zip(buf.par_iter())
            .for_each(|(d, s)| *d = *s);
    }
}

/// Stable parallel radix sort of `u32`s.
pub fn radix_sort_u32(v: &mut [u32]) {
    radix_sort_by_key(v, 32, |&x| u64::from(x));
}

/// Stable parallel radix sort of `u64`s.
pub fn radix_sort_u64(v: &mut [u64]) {
    radix_sort_by_key(v, 64, |&x| x);
}

/// Stable parallel radix sort of `i64`s (sign-biased to preserve order).
pub fn radix_sort_i64(v: &mut [i64]) {
    radix_sort_by_key(v, 64, |&x| (x as u64) ^ (1 << 63));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn empty_single_pair() {
        let mut v: Vec<u32> = vec![];
        radix_sort_u32(&mut v);
        assert!(v.is_empty());
        let mut v = vec![7u32];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![7]);
        let mut v = vec![9u32, 3];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![3, 9]);
    }

    #[test]
    fn random_u32_matches_std() {
        let mut r = Rng::new(1);
        for n in [100usize, SEQ_CUTOFF - 1, SEQ_CUTOFF + 1, 200_000] {
            let mut v: Vec<u32> = (0..n).map(|_| r.next_u64() as u32).collect();
            let mut want = v.clone();
            want.sort_unstable();
            radix_sort_u32(&mut v);
            assert_eq!(v, want, "n={n}");
        }
    }

    #[test]
    fn random_u64_matches_std() {
        let mut r = Rng::new(2);
        let mut v: Vec<u64> = (0..150_000).map(|_| r.next_u64()).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn i64_negative_ordering() {
        let mut r = Rng::new(3);
        let mut v: Vec<i64> = (0..100_000).map(|_| r.next_u64() as i64).collect();
        v.push(i64::MIN);
        v.push(i64::MAX);
        v.push(0);
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_i64(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn stability_preserved() {
        // Sort pairs (key, original index) by key only; within a key the
        // original order must survive.
        let mut r = Rng::new(4);
        let n = 120_000;
        let mut v: Vec<(u32, u32)> = (0..n as u32).map(|i| (r.range(64) as u32, i)).collect();
        radix_sort_by_key(&mut v, 6, |&(k, _)| u64::from(k));
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn narrow_key_bits_single_pass() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..100_000).map(|_| r.range(200) as u32).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut v, 8, |&x| u64::from(x));
        assert_eq!(v, want);
    }

    #[test]
    fn all_equal_and_presorted() {
        let mut v = vec![42u32; 100_000];
        radix_sort_u32(&mut v);
        assert!(v.iter().all(|&x| x == 42));
        let mut v: Vec<u32> = (0..100_000).collect();
        let want = v.clone();
        radix_sort_u32(&mut v);
        assert_eq!(v, want);
        let mut v: Vec<u32> = (0..100_000).rev().collect();
        radix_sort_u32(&mut v);
        assert_eq!(v, want);
    }
}
