//! # `pp-parlay` — parallel sequence primitives
//!
//! This crate is the lowest substrate of the phase-parallel reproduction:
//! the small set of binary fork-join building blocks that the SPAA 2022
//! paper (and the ParlayLib C++ library it builds on) assumes everywhere:
//!
//! * [`monoid`] — the associative-combine abstraction used by scans,
//!   reductions and every augmented tree in the workspace.
//! * [`scan`] — parallel reductions and prefix sums.
//! * [`mod@pack`] — parallel filtering / packing by flags.
//! * [`merge`] — parallel merging of sorted sequences.
//! * [`sort`] — parallel stable merge sort (and key-based variants).
//! * [`radix_sort`] — parallel stable LSD radix sort for integer keys
//!   (ParlayLib's `integer_sort` shape).
//! * [`rng`] — deterministic, splittable randomness: SplitMix64 mixing so
//!   each index gets an independent random value regardless of scheduling.
//! * [`shuffle`] — parallel random permutations built on [`sort`] + [`rng`].
//! * [`list_rank`] — pointer-jumping depth computation on forests
//!   (the substrate behind the `O(log n)`-span unweighted activity
//!   selection algorithm, Thm. 5.3 of the paper).
//! * [`list_contract`] — work-efficient weighted list ranking by
//!   random-mate list contraction (§5.3's "list ranking" application).
//! * [`tree_contract`] — `O(n)`-work forest depths via Euler tours +
//!   list contraction, the "standard tree contraction \[18\]" Thm. 5.3 cites.
//! * [`mod@histogram`] — parallel bucket counting.
//!
//! All functions are deterministic given their seed arguments, are safe
//! Rust throughout, and fall back to tight sequential loops below a grain
//! size so that small inputs do not pay fork-join overhead.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod histogram;
pub mod list_contract;
pub mod list_rank;
pub mod merge;
pub mod monoid;
pub mod pack;
pub mod radix_sort;
pub mod rng;
pub mod scan;
pub mod semisort;
pub mod shuffle;
pub mod sort;
pub mod tree_contract;

pub use histogram::{histogram, histogram_into};
pub use monoid::{MaxMonoid, MinMonoid, Monoid, SumMonoid};
pub use pack::{filter, pack, pack_index, pack_index_into, pack_into};
pub use radix_sort::{radix_sort_by_key, radix_sort_i64, radix_sort_u32, radix_sort_u64};
pub use rng::{hash64, Rng};
pub use scan::{reduce, scan_exclusive, scan_exclusive_into, scan_inclusive};
pub use shuffle::random_permutation;
pub use sort::{par_sort, par_sort_by, par_sort_by_key};

/// Grain size below which parallel primitives run sequentially.
///
/// Chosen so that the fork-join overhead (~100ns per `rayon::join`) is well
/// under 1% of the sequential work of a block.
pub const GRAIN: usize = 4096;

/// Returns `ceil(a / b)` for positive integers.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Number of worker threads rayon will use for this process.
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_ceil_works() {
        assert_eq!(div_ceil(10, 3), 4);
        assert_eq!(div_ceil(9, 3), 3);
        assert_eq!(div_ceil(1, 1), 1);
        assert_eq!(div_ceil(0, 5), 0);
    }

    #[test]
    fn num_threads_positive() {
        assert!(num_threads() >= 1);
    }
}
