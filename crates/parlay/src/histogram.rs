//! Parallel histogram (bucket counting).
//!
//! Counts how many keys fall in each of `k` buckets. Used by the Δ-stepping
//! bucket structure and by workload generators. Per-chunk local counts are
//! accumulated in parallel, then merged — `O(n + k·P)` work.

use rayon::prelude::*;

/// `out[b] = |{ i : keys[i] == b }|` for `b` in `0..num_buckets`.
///
/// # Panics
/// Panics if any key is `>= num_buckets`.
pub fn histogram(keys: &[usize], num_buckets: usize) -> Vec<usize> {
    let mut out = Vec::new();
    histogram_into(keys, num_buckets, &mut out);
    out
}

/// Allocation-free [`histogram`]: counts land in `out` (cleared and
/// zero-filled first, capacity reused). Inputs that fit one chunk — the
/// common per-round case — are counted directly into `out` with no
/// intermediate buffers at all; larger inputs pay the usual per-chunk
/// local counts, merged into `out`.
///
/// # Panics
/// Panics if any key is `>= num_buckets`.
pub fn histogram_into(keys: &[usize], num_buckets: usize, out: &mut Vec<usize>) {
    out.clear();
    out.resize(num_buckets, 0);
    let chunk = (keys.len() / (rayon::current_num_threads() * 4).max(1)).max(16 * 1024);
    if keys.len() <= chunk {
        for &k in keys {
            assert!(k < num_buckets, "key {k} out of range {num_buckets}");
            out[k] += 1;
        }
        return;
    }
    let merged = keys
        .par_chunks(chunk)
        .map(|ch| {
            let mut local = vec![0usize; num_buckets];
            for &k in ch {
                assert!(k < num_buckets, "key {k} out of range {num_buckets}");
                local[k] += 1;
            }
            local
        })
        .reduce(
            || vec![0usize; num_buckets],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    out.copy_from_slice(&merged);
}

/// Group indices by key: returns `(offsets, perm)` where the indices with
/// key `b` are `perm[offsets[b]..offsets[b+1]]`. A counting-sort style
/// grouping used to bucket vertices by rank / distance window.
pub fn group_by_key(keys: &[usize], num_buckets: usize) -> (Vec<usize>, Vec<u32>) {
    let counts = histogram(keys, num_buckets);
    let mut offsets = Vec::with_capacity(num_buckets + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    let mut cursor = offsets[..num_buckets].to_vec();
    let mut perm = vec![0u32; keys.len()];
    // Sequential placement keeps within-bucket order stable; grouping is
    // O(n) and not on the critical path of any measured algorithm.
    for (i, &k) in keys.iter().enumerate() {
        perm[cursor[k]] = i as u32;
        cursor[k] += 1;
    }
    (offsets, perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small() {
        let keys = vec![0, 1, 1, 2, 2, 2];
        assert_eq!(histogram(&keys, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn histogram_large() {
        let n = 200_000;
        let keys: Vec<usize> = (0..n).map(|i| i % 13).collect();
        let h = histogram(&keys, 13);
        for (b, &c) in h.iter().enumerate() {
            let want = n / 13 + usize::from(b < n % 13);
            assert_eq!(c, want);
        }
    }

    #[test]
    fn histogram_into_reuses_capacity() {
        let keys: Vec<usize> = (0..100_000).map(|i| i % 7).collect();
        let mut out = Vec::new();
        histogram_into(&keys, 7, &mut out);
        assert_eq!(out.iter().sum::<usize>(), keys.len());
        let cap = out.capacity();
        histogram_into(&keys[..10], 7, &mut out);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.iter().sum::<usize>(), 10);
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(histogram(&[], 5), vec![0; 5]);
    }

    #[test]
    fn group_by_key_roundtrip() {
        let keys = vec![2usize, 0, 1, 2, 0, 2];
        let (offsets, perm) = group_by_key(&keys, 3);
        assert_eq!(offsets, vec![0, 2, 3, 6]);
        // bucket 0: indices 1, 4 (stable)
        assert_eq!(&perm[0..2], &[1, 4]);
        // bucket 1: index 2
        assert_eq!(&perm[2..3], &[2]);
        // bucket 2: indices 0, 3, 5
        assert_eq!(&perm[3..6], &[0, 3, 5]);
    }
}
