//! Parallel merge of two sorted sequences.
//!
//! The classic divide-and-conquer merge: split the larger input at its
//! median, binary-search the split key in the other input, recurse on the
//! two halves in parallel. Work `O(n + m)`, span `O(log^2 (n + m))` in the
//! binary-forking model — the merge primitive assumed by the paper's
//! parallel sort and by the Huffman-tree algorithm's "merge new objects
//! with the old unused ones" step (§4.3).

use crate::GRAIN;

/// Merge sorted `a` and `b` into `out` using `less` as the strict order.
///
/// Stable: on ties, elements of `a` precede elements of `b`.
///
/// # Panics
/// Panics if `out.len() != a.len() + b.len()`.
pub fn par_merge_by<T, F>(a: &[T], b: &[T], out: &mut [T], less: &F)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> bool + Send + Sync,
{
    assert_eq!(out.len(), a.len() + b.len());
    if a.len() + b.len() <= GRAIN {
        seq_merge_by(a, b, out, less);
        return;
    }
    // Recurse on the larger side's midpoint.
    if a.len() >= b.len() {
        let am = a.len() / 2;
        // First index in b that is strictly greater than a[am]
        // (i.e. count of b-elements that go before a[am] for stability:
        // b elements equal to a[am] come *after* it).
        let bm = lower_bound_by(b, &a[am], &|x, y| less(x, y));
        let (a_lo, a_hi) = a.split_at(am);
        let (b_lo, b_hi) = b.split_at(bm);
        let (out_lo, out_hi) = out.split_at_mut(am + bm);
        rayon::join(
            || par_merge_by(a_lo, b_lo, out_lo, less),
            || par_merge_by(a_hi, b_hi, out_hi, less),
        );
    } else {
        let bm = b.len() / 2;
        // For stability, a-elements equal to b[bm] go *before* it:
        // take all a with !less(b[bm], a), i.e. a <= b[bm].
        let am = upper_bound_by(a, &b[bm], &|x, y| less(x, y));
        let (a_lo, a_hi) = a.split_at(am);
        let (b_lo, b_hi) = b.split_at(bm);
        let (out_lo, out_hi) = out.split_at_mut(am + bm);
        rayon::join(
            || par_merge_by(a_lo, b_lo, out_lo, less),
            || par_merge_by(a_hi, b_hi, out_hi, less),
        );
    }
}

/// Allocate-and-merge convenience wrapper over [`par_merge_by`].
pub fn par_merge<T: Clone + Send + Sync + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    let Some(seed) = a.first().or(b.first()) else {
        return Vec::new();
    };
    let mut out = vec![seed.clone(); a.len() + b.len()];
    par_merge_by(a, b, &mut out, &|x, y| x < y);
    out
}

fn seq_merge_by<T, F>(a: &[T], b: &[T], out: &mut [T], less: &F)
where
    T: Clone,
    F: Fn(&T, &T) -> bool,
{
    let (mut i, mut j) = (0, 0);
    for o in out.iter_mut() {
        if i < a.len() && (j >= b.len() || !less(&b[j], &a[i])) {
            *o = a[i].clone();
            i += 1;
        } else {
            *o = b[j].clone();
            j += 1;
        }
    }
}

/// First index `i` in sorted `v` with `!less(v[i], key)` — `v[i] >= key`.
pub fn lower_bound_by<T, F>(v: &[T], key: &T, less: &F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let (mut lo, mut hi) = (0, v.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if less(&v[mid], key) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First index `i` in sorted `v` with `less(key, v[i])` — `v[i] > key`.
pub fn upper_bound_by<T, F>(v: &[T], key: &T, less: &F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let (mut lo, mut hi) = (0, v.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if less(key, &v[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds() {
        let v = [1, 3, 3, 5, 9];
        let less = |a: &i32, b: &i32| a < b;
        assert_eq!(lower_bound_by(&v, &3, &less), 1);
        assert_eq!(upper_bound_by(&v, &3, &less), 3);
        assert_eq!(lower_bound_by(&v, &0, &less), 0);
        assert_eq!(upper_bound_by(&v, &10, &less), 5);
        assert_eq!(lower_bound_by(&v, &4, &less), 3);
    }

    #[test]
    fn merge_small() {
        assert_eq!(
            par_merge(&[1, 4, 6], &[2, 3, 5, 7]),
            vec![1, 2, 3, 4, 5, 6, 7]
        );
    }

    #[test]
    fn merge_empty_sides() {
        assert_eq!(par_merge::<i32>(&[], &[]), Vec::<i32>::new());
        assert_eq!(par_merge(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(par_merge(&[], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn merge_large_matches_std() {
        let n = 40_000;
        let a: Vec<u64> = (0..n).map(|i| (i * 3) % 10_007).collect();
        let b: Vec<u64> = (0..n + 13).map(|i| (i * 7) % 10_007).collect();
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        let got = par_merge(&a, &b);
        let mut want = [a.clone(), b.clone()].concat();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_is_stable() {
        // Pair (key, source); equal keys must keep a-before-b order.
        let a: Vec<(u32, u8)> = (0..9000).map(|i| (i / 3, 0u8)).collect();
        let b: Vec<(u32, u8)> = (0..9000).map(|i| (i / 3, 1u8)).collect();
        let mut out = vec![(0u32, 0u8); a.len() + b.len()];
        par_merge_by(&a, &b, &mut out, &|x, y| x.0 < y.0);
        for w in out.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 <= w[1].1, "stability violated at key {}", w[0].0);
            }
        }
    }
}
