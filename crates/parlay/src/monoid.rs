//! The monoid abstraction: an associative combine with an identity.
//!
//! Section 2 of the paper defines augmented values by a triple
//! `(A, f, I_A)` — a type, an associative combine function, and its
//! identity. Every scan, reduction, segment tree, Fenwick tree and
//! augmented BST in this workspace is parameterized by this trait.
//!
//! The trait is *instance-based* (methods take `&self`) rather than purely
//! type-based so that monoids can carry runtime parameters (e.g. the
//! random-pivot monoid of the LIS range tree carries a seed).

/// An associative combine operation with identity over values of type `Self::T`.
///
/// Laws (checked by property tests in this crate and users):
/// * `combine(identity(), x) == x == combine(x, identity())`
/// * `combine(a, combine(b, c)) == combine(combine(a, b), c)`
pub trait Monoid: Send + Sync {
    /// The value type being combined.
    type T: Clone + Send + Sync;

    /// The identity element.
    fn identity(&self) -> Self::T;

    /// Associative combine ("abstract sum") of two values.
    fn combine(&self, a: &Self::T, b: &Self::T) -> Self::T;

    /// Combine a value into an accumulator in place. Override for speed.
    #[inline]
    fn combine_into(&self, acc: &mut Self::T, rhs: &Self::T) {
        *acc = self.combine(acc, rhs);
    }
}

/// Addition monoid over any numeric type implementing `core::ops::Add`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SumMonoid;

macro_rules! impl_sum {
    ($($t:ty),*) => {$(
        impl Monoid for ($crate::monoid::SumMonoid, core::marker::PhantomData<$t>) {
            type T = $t;
            #[inline]
            fn identity(&self) -> $t { 0 as $t }
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { a.wrapping_add(*b) }
        }
    )*};
}

/// A sum monoid instance for `u64` / `i64` / `usize` etc.
/// Use as `sum_monoid::<u64>()`.
pub fn sum_monoid<T>() -> (SumMonoid, core::marker::PhantomData<T>) {
    (SumMonoid, core::marker::PhantomData)
}

impl_sum!(u32, u64, usize, i32, i64, isize);

/// Max monoid with an explicit identity (the "minus infinity" of the type).
#[derive(Clone, Copy, Debug)]
pub struct MaxMonoid<T>(pub T);

impl<T: Ord + Clone + Send + Sync> Monoid for MaxMonoid<T> {
    type T = T;
    #[inline]
    fn identity(&self) -> T {
        self.0.clone()
    }
    #[inline]
    fn combine(&self, a: &T, b: &T) -> T {
        if a >= b {
            a.clone()
        } else {
            b.clone()
        }
    }
}

/// Min monoid with an explicit identity (the "plus infinity" of the type).
#[derive(Clone, Copy, Debug)]
pub struct MinMonoid<T>(pub T);

impl<T: Ord + Clone + Send + Sync> Monoid for MinMonoid<T> {
    type T = T;
    #[inline]
    fn identity(&self) -> T {
        self.0.clone()
    }
    #[inline]
    fn combine(&self, a: &T, b: &T) -> T {
        if a <= b {
            a.clone()
        } else {
            b.clone()
        }
    }
}

/// A monoid defined by a pair of closures; handy for tests and one-off uses.
pub struct FnMonoid<T, F> {
    identity: T,
    combine: F,
}

impl<T, F> FnMonoid<T, F>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    /// Build a monoid from an identity element and a combine closure.
    /// The caller is responsible for associativity.
    pub fn new(identity: T, combine: F) -> Self {
        Self { identity, combine }
    }
}

impl<T, F> Monoid for FnMonoid<T, F>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    type T = T;
    #[inline]
    fn identity(&self) -> T {
        self.identity.clone()
    }
    #[inline]
    fn combine(&self, a: &T, b: &T) -> T {
        (self.combine)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_monoid_laws() {
        let m = sum_monoid::<u64>();
        assert_eq!(m.identity(), 0);
        assert_eq!(m.combine(&3, &4), 7);
        assert_eq!(m.combine(&m.identity(), &9), 9);
    }

    #[test]
    fn max_monoid_laws() {
        let m = MaxMonoid(i64::MIN);
        assert_eq!(m.combine(&3, &-4), 3);
        assert_eq!(m.combine(&m.identity(), &-4), -4);
        // associativity on a triple
        let (a, b, c) = (5i64, -2, 9);
        assert_eq!(
            m.combine(&a, &m.combine(&b, &c)),
            m.combine(&m.combine(&a, &b), &c)
        );
    }

    #[test]
    fn min_monoid_laws() {
        let m = MinMonoid(u64::MAX);
        assert_eq!(m.combine(&3, &4), 3);
        assert_eq!(m.combine(&m.identity(), &4), 4);
    }

    #[test]
    fn fn_monoid() {
        let m = FnMonoid::new(1u64, |a: &u64, b: &u64| a * b);
        assert_eq!(m.combine(&6, &7), 42);
        assert_eq!(m.combine(&m.identity(), &7), 7);
    }
}
