//! Parallel semisort: group equal keys without fully ordering the keys.
//!
//! §5.3's MIS analysis notes: "If not [stored with correspondence], we
//! can use semisort or hash table, but that makes the work bound O(m)
//! in expectation" — semisort is the standard primitive for building
//! the arc-correspondence tables. Our implementation hashes the keys
//! and sorts by hash (Gu–Shun–Sun–Blelloch's top-down semisort reduced
//! to its sort-based core): equal keys become adjacent, but the groups
//! appear in pseudo-random (hash) order, which is all a grouping
//! consumer may rely on.

use crate::rng::hash64;
use crate::sort::par_sort_by_key;
use rayon::prelude::*;
use std::hash::Hash;

/// Reorder `items` so equal keys are adjacent; returns `(items, group
/// boundaries)` where group `g` is `items[bounds[g]..bounds[g+1]]`.
/// Groups appear in hash order (not key order).
pub fn semisort_by<T, K, F>(items: Vec<T>, key: F, seed: u64) -> (Vec<T>, Vec<usize>)
where
    T: Clone + Send + Sync,
    K: Hash + Eq + Send + Sync,
    F: Fn(&T) -> K + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return (items, vec![0]);
    }
    // Hash each key (64-bit; collisions between *different* keys are
    // possible with probability ~n²/2^64, resolved by a secondary
    // discriminator hash).
    let mut tagged: Vec<(u64, u64, T)> = items
        .into_par_iter()
        .map(|x| {
            let k = key(&x);
            let h = hash_key(&k, seed);
            let h2 = hash_key(&k, seed ^ 0x9E37_79B9_97F4_A7C5);
            (h, h2, x)
        })
        .collect();
    par_sort_by_key(&mut tagged, |&(h, h2, _)| (h, h2));
    let mut bounds = vec![0usize];
    for i in 1..n {
        if (tagged[i].0, tagged[i].1) != (tagged[i - 1].0, tagged[i - 1].1) {
            bounds.push(i);
        }
    }
    bounds.push(n);
    let items: Vec<T> = tagged.into_par_iter().map(|(_, _, x)| x).collect();
    (items, bounds)
}

fn hash_key<K: Hash>(k: &K, seed: u64) -> u64 {
    // FNV-style fold of std's Hasher output through our mixer.
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    hash64(seed, h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::collections::HashMap;

    #[test]
    fn groups_are_complete_and_disjoint() {
        let mut r = Rng::new(1);
        let items: Vec<(u32, u32)> = (0..20_000)
            .map(|i| (r.range(100) as u32, i as u32))
            .collect();
        let mut want: HashMap<u32, usize> = HashMap::new();
        for &(k, _) in &items {
            *want.entry(k).or_default() += 1;
        }
        let (sorted, bounds) = semisort_by(items, |&(k, _)| k, 7);
        assert_eq!(bounds.len() - 1, want.len(), "one group per key");
        for g in 0..bounds.len() - 1 {
            let group = &sorted[bounds[g]..bounds[g + 1]];
            let k = group[0].0;
            assert!(group.iter().all(|&(x, _)| x == k), "mixed group");
            assert_eq!(group.len(), want[&k], "wrong group size for {k}");
        }
    }

    #[test]
    fn empty_and_single() {
        let (v, b) = semisort_by(Vec::<u32>::new(), |&x| x, 1);
        assert!(v.is_empty());
        assert_eq!(b, vec![0]);
        let (v, b) = semisort_by(vec![42u32], |&x| x, 1);
        assert_eq!(v, vec![42]);
        assert_eq!(b, vec![0, 1]);
    }

    #[test]
    fn all_equal_is_one_group() {
        let (v, b) = semisort_by(vec![7u8; 5000], |&x| x, 3);
        assert_eq!(v.len(), 5000);
        assert_eq!(b, vec![0, 5000]);
    }

    #[test]
    fn deterministic_in_seed() {
        let items: Vec<u32> = (0..1000).map(|i| i % 37).collect();
        let a = semisort_by(items.clone(), |&x| x, 5);
        let b = semisort_by(items, |&x| x, 5);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
