//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]` and `pat in
//! strategy` bindings), `prop::collection::vec`, [`any`], integer-range
//! strategies, tuple strategies, and the `prop_assert*` macros.
//!
//! Inputs are generated from a deterministic per-test seed (derived from
//! the test name) so failures reproduce exactly. There is no shrinking:
//! a failing case reports the case index; re-running the test hits the
//! same case. Full proptest returns by pointing the workspace
//! `proptest` dependency at crates.io.

#![forbid(unsafe_code)]

/// Error carried out of a failing property (the `prop_assert*` macros
/// produce it; the runner turns it into a panic with context).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// SplitMix64 — the deterministic generator behind every strategy.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` 0 returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// FNV-1a over a string — stable per-test seeds from test names.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator. The single required method produces one value.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range generator.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo + 1) as u64;
                (lo + rng.below(width) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// `vec(element, size_range)` — a vector of strategy-generated
        /// elements with length drawn from the range.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let lo = self.size.start;
                let hi = self.size.end.max(lo + 1);
                let n = lo + rng.below((hi - lo) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the test files `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($a), stringify!($b), format!($($fmt)+), left, right, file!(), line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}\n at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                file!(),
                line!()
            )));
        }
    }};
}

/// The proptest entry macro: turns each `fn name(pat in strategy, ...)`
/// into a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(
                        $crate::fnv(concat!(module_path!(), "::", stringify!($name))) ^ case,
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -5i64..5, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_compose(pair in (0u8..3, 0u64..200), trip in (0i64..9, 1u32..4, any::<bool>())) {
            prop_assert!(pair.0 < 3 && pair.1 < 200);
            prop_assert!(trip.0 < 9 && trip.1 >= 1);
            let _ = trip.2;
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0u32..50, 0..20)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::new(crate::fnv("x"));
        let mut b = crate::TestRng::new(crate::fnv("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
