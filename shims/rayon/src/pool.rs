//! The fork-join execution core: registries (thread pools), jobs,
//! latches, [`join`], and [`scope`].
//!
//! # Scheduler design (v2: work stealing)
//!
//! Since PR 8 the scheduler is a Blumofe–Leiserson-style work-stealing
//! arrangement replacing the original single mutex-protected FIFO:
//!
//! - **Per-worker deques.** Every worker owns a double-ended queue of
//!   type-erased [`JobRef`]s. The owner pushes and pops at the *tail*
//!   (LIFO — the cache-warm, Cilk-style depth-first end); idle workers
//!   steal from the *head* (FIFO — the oldest, coarsest pieces of
//!   work). The deques are small mutex-guarded `VecDeque`s rather than
//!   lock-free Chase–Lev arrays: the chunk drivers pre-split regions
//!   into `O(threads)` coarse jobs, so each deque sees tens of
//!   operations per region and an uncontended lock is one CAS — but
//!   unlike the old design the lock is *per worker*, so queue traffic
//!   no longer serializes the whole pool. The exported scheduler
//!   counters ([`crate::SchedulerCounters`]) make that claim
//!   measurable on 1-core CI.
//! - **A lock-free injector** for submissions from outside the pool
//!   (the thread inside [`crate::ThreadPool::install`], the global
//!   pool's callers): a Treiber chain of boxed job segments pushed
//!   with a CAS and consumed by swapping the whole chain out. The
//!   classic ABA hazard does not arise: the push CAS never
//!   dereferences the head value it observed, and only a chain's
//!   exclusive owner (the thread that swapped it out) frees segments.
//! - **Steal-back is a tail pop.** A [`join`] caller reclaims its
//!   second closure by checking the tail of its *own* deque — O(1) —
//!   instead of the old O(n) pointer scan under a global lock. A
//!   non-worker caller reclaims from the injector chain.
//! - **Counted parking with no lost wakeups.** A registry-wide
//!   `pending` counter tracks published-but-unclaimed jobs and
//!   `completions` counts executed ones. A thread parks only after
//!   registering as a sleeper *under the park lock* and then
//!   re-checking `pending` (workers) or `(pending, completions,
//!   latch)` (latch waiters); publishers and job finishers check the
//!   `parked` count after bumping theirs, so with sequentially
//!   consistent counter accesses one side always sees the other. The
//!   old code parked latch waiters on the *latch's own* condvar, which
//!   `inject`/`inject_many` never notified — a job injected in that
//!   window could sit unexecuted while every thread was latch-parked
//!   (the PR 8 lost-wakeup fix; reverting the fix deadlocks
//!   `pp_check::models::deque::lost_wakeup_model`).
//!
//! The deque/injector/parking protocol is ported operation-for-
//! operation as `pp_check::models::deque` and explored exhaustively at
//! 2–3 threads (including weakened-ordering runs); the pool itself
//! also compiles against the instrumented shims under `--cfg
//! pp_check`.
//!
//! # Safety model
//!
//! Jobs borrow from the stack frame that spawned them ([`StackJob`],
//! chunk batches, scope closures). Every such frame *blocks until its
//! latch opens* before returning — including on the panic path — so a
//! job's referent outlives every thread that can observe the raw
//! pointers inside its [`JobRef`]. Results and panics travel back
//! through `UnsafeCell` slots written exactly once by the executing
//! thread before the latch is opened (the latch's release/acquire pair
//! publishes the write).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

#[cfg(not(pp_check))]
use std::sync::atomic::AtomicUsize;
#[cfg(not(pp_check))]
use std::sync::{Condvar, Mutex};
// Under `--cfg pp_check` the pool compiles against the model checker's
// instrumented drop-in shims (`pp_check::sync`): identical API, std
// passthrough outside a model, schedule-exploration hooks inside one.
#[cfg(pp_check)]
use pp_check::sync::{AtomicUsize, Condvar, Mutex};

/// Upper bound a builder accepts for [`num_threads`]
/// (`ThreadPoolBuilder::num_threads`): requests beyond this are
/// reported as a [`crate::ThreadPoolBuildError`] instead of attempting
/// thousands of OS spawns.
pub(crate) const MAX_THREADS: usize = 4096;

// ---------------------------------------------------------------------------
// Job references
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job living in some blocked stack frame
/// (or, for scope jobs, on the heap).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: the referent is kept alive by the frame that created the job,
// which blocks on the job's latch before returning; execution happens
// at most once (each JobRef is claimed by exactly one thread — a deque
// pop, a steal, an injector grab, or a successful steal-back).
unsafe impl Send for JobRef {}

impl JobRef {
    pub(crate) fn new(data: *const (), execute: unsafe fn(*const ())) -> Self {
        Self { data, execute }
    }

    /// Identity test for steal-back: two refs denote the same job iff
    /// they point at the same frame slot.
    fn same_job(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }

    /// # Safety
    /// The referent must still be alive and not yet executed.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: the caller upholds this type's contract (referent
        // alive, at most one execution), which is exactly what the
        // erased entry point requires of `data`.
        unsafe { (self.execute)(self.data) }
    }
}

// ---------------------------------------------------------------------------
// Latches
// ---------------------------------------------------------------------------

/// A countdown latch: opens when `remaining` reaches zero. Waiters
/// *help* (claim and run scheduled jobs) instead of blocking while work
/// is available; see [`Registry::wait_latch`]. Parking and wakeups live
/// in the registry's parking protocol, not here — the latch only
/// counts, so `inject` can wake a latch waiter without knowing which
/// latch it sleeps on (the PR 8 lost-wakeup fix).
pub(crate) struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
}

impl CountLatch {
    pub(crate) fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
        }
    }

    /// Add `n` pending completions (used by [`crate::scope`], whose job
    /// count is not known up front).
    pub(crate) fn add(&self, n: usize) {
        // Ordering: `Relaxed` suffices — `add` always runs *before* the
        // jobs it accounts for are published to a queue, and the deque
        // mutex (or the injector's release/acquire pair) orders the
        // publication; the count can therefore never be observed too
        // low by a completing job. Verified by exhaustive
        // weakened-ordering exploration of the scope model
        // (`pp_check::models::scope`), which calls `add` with `Relaxed`
        // semantics and stays race-free.
        self.remaining.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one completion.
    ///
    /// The decrement happens **while holding the latch lock**: a waiter
    /// that observes `probe() == 0` therefore knows the final notifier
    /// is either inside this critical section or already past it, and
    /// [`CountLatch::sync_before_teardown`] (one lock round-trip) is
    /// enough to let the latch's stack frame be freed safely. Without
    /// the lock around the decrement, a spinning waiter could see zero
    /// and pop the frame while the completer is still touching the
    /// latch — a use-after-free. Waking parked waiters is the
    /// registry's job ([`Registry::job_finished`] runs right after
    /// every job execution, and `done_one` only ever runs inside one).
    pub(crate) fn done_one(&self) {
        let guard = self.lock.lock().unwrap();
        // Ordering: `AcqRel`. The `Release` half publishes the result
        // writes the executing thread made before `done_one`; the
        // `Acquire` half makes the last decrementer see every earlier
        // completer's writes. The model checker proves this pair is
        // load-bearing: the probe-only model
        // (`pp_check::models::latch::probe_publish_model`) is clean as
        // declared and races when the pair is demoted to `Relaxed`
        // (`latch_probe_orderings_are_load_bearing`).
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        drop(guard);
    }

    /// True once every completion has been recorded. `Acquire` pairs
    /// with the `AcqRel` decrement so result writes made before
    /// [`CountLatch::done_one`] are visible after a `true` probe.
    pub(crate) fn probe(&self) -> bool {
        // Ordering: `Acquire`, the read half of the publication edge
        // described on `done_one` — demoting either side to `Relaxed`
        // makes the probe-only latch model race on the result slot.
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Rendezvous with the final [`CountLatch::done_one`]: after this
    /// returns, no completing thread will touch the latch again, so the
    /// frame that owns it may be dropped. Call exactly once, after
    /// `probe()` returned true.
    fn sync_before_teardown(&self) {
        drop(self.lock.lock().unwrap());
    }
}

// ---------------------------------------------------------------------------
// Scheduler counters
// ---------------------------------------------------------------------------

/// Cumulative scheduler bookkeeping, exported as
/// [`crate::SchedulerCounters`] snapshots. Plain `std` atomics on
/// purpose: these are diagnostics, not protocol state, so they stay
/// invisible to the model checker under `--cfg pp_check` (the model
/// modules treat their own bookkeeping the same way), and `Relaxed`
/// increments keep them nearly free on the hot path.
#[derive(Default)]
struct SchedCounters {
    queue_locks: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    injector_pushes: AtomicU64,
    jobs_executed: AtomicU64,
}

impl SchedCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The lock-free injector (external submissions)
// ---------------------------------------------------------------------------

/// One pushed batch: jobs in submission (oldest-first) order, plus the
/// chain link.
struct Segment {
    jobs: VecDeque<JobRef>,
    /// Next-*older* segment in the chain (`0` terminates). Written
    /// before the CAS publishes this segment, read only by the
    /// consumer that swapped the chain out.
    next: usize,
}

/// Lock-free multi-producer injector: a Treiber chain of boxed job
/// segments. Producers CAS a new segment onto the head; consumers
/// [`Injector::grab_all`] the entire chain with one `swap` and own it
/// exclusively.
struct Injector {
    /// `*mut Segment` as `usize` (`0` = empty). A `usize` atomic rather
    /// than `AtomicPtr` so the instrumented `pp_check` shim (which
    /// models `AtomicUsize`) can stand in under `--cfg pp_check`.
    head: AtomicUsize,
}

impl Injector {
    fn new() -> Self {
        Self {
            head: AtomicUsize::new(0),
        }
    }

    /// Publish one segment of jobs (`jobs` must be non-empty).
    fn push(&self, jobs: VecDeque<JobRef>) {
        debug_assert!(!jobs.is_empty());
        let segment = Box::into_raw(Box::new(Segment { jobs, next: 0 }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `segment` came from `Box::into_raw` above and is
            // not yet published, so this thread still has exclusive
            // access to it.
            unsafe { (*segment).next = head };
            // Ordering: `Release` on success publishes the segment's
            // contents (jobs + next link) to the consumer that later
            // `Acquire`-swaps the chain out; the failure load is
            // `Relaxed` because a retry never dereferences `head` —
            // this is also why a stale (ABA) head value is harmless
            // here. Proven load-bearing by the weakened-ordering run
            // of `pp_check::models::deque::injector_publish_model`.
            match self.head.compare_exchange(
                head,
                segment as usize,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Take every queued job, oldest segment first. The `swap` hands
    /// this thread exclusive ownership of the whole chain.
    fn grab_all(&self) -> VecDeque<JobRef> {
        // Cheap empty probe first: the common case on worker scans, and
        // it keeps idle workers from bouncing the head cache line with
        // read-modify-writes.
        if self.head.load(Ordering::Acquire) == 0 {
            return VecDeque::new();
        }
        // Ordering: the `Acquire` half pairs with the push `Release` so
        // the segment contents are visible; the `Release` half orders
        // this consumer's prior queue activity before a later pusher's
        // reuse of the emptied head.
        let mut cursor = self.head.swap(0, Ordering::AcqRel);
        let mut segments = Vec::new();
        while cursor != 0 {
            // SAFETY: the swap above made this thread the chain's
            // exclusive owner, and every nonzero link in it is a
            // pointer minted by `Box::into_raw` in `push`.
            let segment = unsafe { Box::from_raw(cursor as *mut Segment) };
            cursor = segment.next;
            segments.push(segment);
        }
        // The chain links newest → oldest; hand jobs back oldest-first.
        let mut jobs = VecDeque::new();
        for segment in segments.into_iter().rev() {
            jobs.extend(segment.jobs);
        }
        jobs
    }

    /// Reclaim `job` if it is still queued (the non-worker `join`
    /// caller's steal-back): swap the chain out, remove the job,
    /// republish the remainder. Not finding the job means a consumer
    /// claimed it (or holds it mid-move) — the caller must wait on the
    /// job's latch instead.
    fn steal_back(&self, job: &JobRef) -> bool {
        let mut jobs = self.grab_all();
        if jobs.is_empty() {
            return false;
        }
        let found = match jobs.iter().position(|j| j.same_job(job)) {
            Some(at) => {
                jobs.remove(at);
                true
            }
            None => false,
        };
        if !jobs.is_empty() {
            self.push(jobs);
        }
        found
    }
}

// ---------------------------------------------------------------------------
// Registry (one per pool)
// ---------------------------------------------------------------------------

/// Sleeper bookkeeping, all mutated under the park lock.
struct ParkState {
    /// Workers blocked on `job_ready`.
    sleepers: usize,
    /// Latch waiters blocked on `helper_wake`.
    helper_sleepers: usize,
    shutdown: bool,
}

/// One thread pool's shared state: per-worker deques, the external
/// injector, the parking protocol, and the worker count.
pub(crate) struct Registry {
    /// One mutex-guarded deque per worker. Owner pushes/pops at the
    /// back (LIFO), thieves pop at the front (FIFO).
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Lock-free chain for jobs submitted from non-worker threads.
    injector: Injector,
    /// Jobs published but not yet claimed, across all queues. A thread
    /// never parks while this is nonzero, which also covers the
    /// transient window where an injector consumer holds grabbed jobs
    /// it is about to republish. `SeqCst` everywhere: each park/wake
    /// pairing is a store-buffering (Dekker) shape — both sides store
    /// their own counter then load the other's — which weaker orderings
    /// do not make safe.
    pending: AtomicUsize,
    /// Jobs executed. Latch waiters snapshot this before probing and
    /// refuse to park if it moved, so a completion that opens a latch
    /// between probe and park is never slept through.
    completions: AtomicUsize,
    /// Threads inside `park_worker`/`park_helper` (registered under the
    /// park lock, but read without it by the wake fast path).
    parked: AtomicUsize,
    park: Mutex<ParkState>,
    /// Workers park here when every queue is empty.
    job_ready: Condvar,
    /// Latch waiters park here; woken on job arrival *and* job
    /// completion (the latter may have opened their latch).
    helper_wake: Condvar,
    counters: SchedCounters,
    num_threads: usize,
    /// `num_threads` capped by the machine's available parallelism:
    /// the fan-out the chunk drivers size for. Workers beyond the core
    /// count can only add contention, so an oversubscribed pool (e.g.
    /// 8 workers on a 1-core CI container) keeps its truthful
    /// `num_threads` but schedules coarser chunks.
    parallelism: usize,
}

impl Registry {
    /// Spawn `num_threads` workers around a fresh registry. On a spawn
    /// failure the already-started workers are shut down before the
    /// error is returned (the builder surfaces it as a
    /// [`crate::ThreadPoolBuildError`]).
    pub(crate) fn spawn(
        num_threads: usize,
    ) -> std::io::Result<(Arc<Registry>, Vec<std::thread::JoinHandle<()>>)> {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let registry = Arc::new(Registry {
            deques: (0..num_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Injector::new(),
            pending: AtomicUsize::new(0),
            completions: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            park: Mutex::new(ParkState {
                sleepers: 0,
                helper_sleepers: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            helper_wake: Condvar::new(),
            counters: SchedCounters::default(),
            // Report at least 1 even for the zero-worker fallback
            // registry: rayon's contract is `current_num_threads() >=
            // 1`, and callers divide by it (block sizing in scans). A
            // zero-worker pool reports 1 and `is_sequential()` routes
            // every region inline, so no job ever needs a worker.
            num_threads: num_threads.max(1),
            parallelism: num_threads.min(hardware).max(1),
        });
        let mut handles = Vec::with_capacity(num_threads);
        for index in 0..num_threads {
            let reg = Arc::clone(&registry);
            let spawned = std::thread::Builder::new()
                .name(format!("pp-rayon-{index}"))
                .spawn(move || worker_loop(reg, index));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    registry.terminate();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok((registry, handles))
    }

    /// The pool's worker count (what [`crate::current_num_threads`]
    /// reports inside this pool).
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The fan-out drivers should size chunk counts for (worker count
    /// capped by hardware cores; see the field docs).
    pub(crate) fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// True when parallel regions should just run inline: a one-worker
    /// pool gains nothing from queue round-trips.
    pub(crate) fn is_sequential(&self) -> bool {
        self.num_threads <= 1
    }

    /// Snapshot the scheduler counters (see
    /// [`crate::SchedulerCounters`] for field meanings).
    pub(crate) fn counters_snapshot(&self) -> crate::SchedulerCounters {
        crate::SchedulerCounters {
            queue_locks: self.counters.queue_locks.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
            parks: self.counters.parks.load(Ordering::Relaxed),
            injector_pushes: self.counters.injector_pushes.load(Ordering::Relaxed),
            jobs_executed: self.counters.jobs_executed.load(Ordering::Relaxed),
        }
    }

    /// This thread's worker index in *this* registry, if it is one of
    /// its workers. A worker of pool A running a region of pool B must
    /// not treat A's deque as B's, hence the identity check.
    fn own_worker_index(&self) -> Option<usize> {
        WORKER_SLOT.with(|slot| {
            slot.borrow().as_ref().and_then(|(registry, index)| {
                std::ptr::eq(Arc::as_ptr(registry), self).then_some(*index)
            })
        })
    }

    /// Enqueue one job: own deque tail for a worker of this pool, the
    /// injector otherwise.
    pub(crate) fn inject(&self, job: JobRef) {
        match self.own_worker_index() {
            Some(index) => {
                SchedCounters::bump(&self.counters.queue_locks);
                self.deques[index].lock().unwrap().push_back(job);
            }
            None => {
                SchedCounters::bump(&self.counters.injector_pushes);
                self.injector.push(VecDeque::from([job]));
            }
        }
        self.published(1);
    }

    /// Enqueue a batch (one injector segment, or one run of own-deque
    /// pushes) and wake sleepers.
    pub(crate) fn inject_many<I: IntoIterator<Item = JobRef>>(&self, jobs: I) {
        let jobs: VecDeque<JobRef> = jobs.into_iter().collect();
        if jobs.is_empty() {
            return;
        }
        let count = jobs.len();
        match self.own_worker_index() {
            Some(index) => {
                SchedCounters::bump(&self.counters.queue_locks);
                self.deques[index].lock().unwrap().extend(jobs);
            }
            None => {
                SchedCounters::bump(&self.counters.injector_pushes);
                self.injector.push(jobs);
            }
        }
        self.published(count);
    }

    /// Account `count` newly published jobs and wake sleepers. Runs
    /// *after* the jobs are reachable (deque or injector): a woken
    /// thread rescans every queue, and a thread that finds nothing
    /// re-checks `pending` under the park lock before sleeping, so the
    /// jobs cannot be slept through.
    fn published(&self, count: usize) {
        self.pending.fetch_add(count, Ordering::SeqCst);
        self.wake();
    }

    /// Account one claimed job (`pending` is a published-minus-claimed
    /// ledger; every successful take decrements it exactly once).
    fn claimed(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake sleepers after `pending` moved. The lock-free `parked == 0`
    /// fast path is sound: a sleeper registers in `parked` (SeqCst)
    /// *before* re-checking `pending`, and this thread bumped `pending`
    /// (SeqCst) *before* this load — sequential consistency rules out
    /// both sides reading stale, so either the sleeper sees the new
    /// jobs and skips sleeping, or we see the sleeper and notify under
    /// the park lock (which the sleeper holds until its wait, making
    /// the notify un-missable).
    fn wake(&self) {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let state = self.park.lock().unwrap();
        if state.sleepers > 0 {
            self.job_ready.notify_all();
        }
        if state.helper_sleepers > 0 {
            self.helper_wake.notify_all();
        }
        drop(state);
    }

    /// Account one executed job and wake latch waiters: the job may
    /// have opened the latch a parked helper is waiting on (`done_one`
    /// runs inside job execution), and helpers predicate their sleep on
    /// the `completions` counter, so this bump-then-check cannot be
    /// slept through (same store-buffering argument as [`Self::wake`]).
    fn job_finished(&self) {
        SchedCounters::bump(&self.counters.jobs_executed);
        self.completions.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let state = self.park.lock().unwrap();
        if state.helper_sleepers > 0 {
            self.helper_wake.notify_all();
        }
        drop(state);
    }

    /// Claim one job: own deque tail (depth-first), then the injector,
    /// then round-robin steals from the other deques' heads. `None`
    /// means nothing was claimable *at this instant* — with `pending`
    /// nonzero that can still be a transient (a consumer mid-move), so
    /// callers rescan instead of parking while `pending` holds.
    fn find_work(&self) -> Option<JobRef> {
        let slot = self.own_worker_index();
        // 1. Own tail: the job this thread pushed last (cache-warm).
        if let Some(index) = slot {
            SchedCounters::bump(&self.counters.queue_locks);
            let mut deque = self.deques[index].lock().unwrap();
            if let Some(job) = deque.pop_back() {
                // Decrement while still holding the deque lock: a peer
                // that saw `pending > 0` and rescans serializes behind
                // this lock instead of racing past a half-claimed job
                // (the shape `pp_check::models::park` explores).
                self.claimed();
                drop(deque);
                return Some(job);
            }
        }
        // 2. The injector: externally submitted batches.
        let mut grabbed = self.injector.grab_all();
        if let Some(first) = grabbed.pop_front() {
            if !grabbed.is_empty() {
                match slot {
                    Some(index) => {
                        // A worker adopts the whole batch: the rest
                        // lands in its deque where peers can steal it.
                        SchedCounters::bump(&self.counters.queue_locks);
                        self.deques[index].lock().unwrap().extend(grabbed);
                    }
                    // A non-worker helper has no deque: keep one job,
                    // republish the rest for the workers. The jobs stay
                    // `pending` throughout, so nobody parks during the
                    // brief republish window.
                    None => self.injector.push(grabbed),
                }
            }
            self.claimed();
            return Some(first);
        }
        // 3. Steal the oldest job from another worker's head.
        let start = slot.map_or(0, |index| index + 1);
        for offset in 0..self.deques.len() {
            let victim = (start + offset) % self.deques.len();
            if Some(victim) == slot {
                continue;
            }
            SchedCounters::bump(&self.counters.queue_locks);
            let mut deque = self.deques[victim].lock().unwrap();
            if let Some(job) = deque.pop_front() {
                SchedCounters::bump(&self.counters.steals);
                // Under the victim's lock, as in the own-pop branch.
                self.claimed();
                drop(deque);
                return Some(job);
            }
        }
        None
    }

    /// Remove `job` from its queue if no thread has claimed it yet —
    /// the [`join`] caller "steals back" its second closure to run it
    /// inline instead of waiting. For a worker this is an O(1) check of
    /// its own deque's tail: the job it pushed last is either still
    /// there or a thief took it from the head long ago.
    pub(crate) fn steal_back(&self, job: &JobRef) -> bool {
        match self.own_worker_index() {
            Some(index) => {
                SchedCounters::bump(&self.counters.queue_locks);
                let mut deque = self.deques[index].lock().unwrap();
                if deque.back().is_some_and(|j| j.same_job(job)) {
                    deque.pop_back();
                    // Under the deque lock (see `find_work`).
                    self.claimed();
                    true
                } else {
                    false
                }
            }
            None => {
                let reclaimed = self.injector.steal_back(job);
                if reclaimed {
                    self.claimed();
                }
                reclaimed
            }
        }
    }

    /// Block until `latch` opens, executing scheduled jobs in the
    /// meantime. Helping keeps nested parallel regions livelock-free: a
    /// thread waiting on an inner region's latch claims the very jobs
    /// that open it.
    pub(crate) fn wait_latch(&self, latch: &CountLatch) {
        loop {
            // Snapshot before probing: if a job completes after this
            // load, `park_helper` sees `completions` moved and re-loops
            // instead of sleeping past the completion that may have
            // opened the latch.
            let seen = self.completions.load(Ordering::SeqCst);
            if latch.probe() {
                break;
            }
            match self.find_work() {
                Some(job) => {
                    // SAFETY: queued JobRefs are alive until their latch
                    // opens, and `find_work` hands each to one thread
                    // only.
                    unsafe { job.execute() };
                    self.job_finished();
                }
                None => self.park_helper(latch, seen),
            }
        }
        // The caller will typically free the latch's frame next; wait
        // out the final completer's critical section first.
        latch.sync_before_teardown();
    }

    /// Park until new work may be available or shutdown. Returns
    /// `false` when the registry has shut down *and* drained (workers
    /// must run stragglers injected just before the shutdown signal).
    fn park_worker(&self) -> bool {
        let mut state = self.park.lock().unwrap();
        // Register in `parked` *before* re-checking `pending`:
        // publishers bump `pending` and then read `parked`, so (both
        // SeqCst) either this thread sees the new jobs here and skips
        // the wait, or the publisher sees the registration and
        // notifies under the park lock — held from here until `wait`
        // atomically releases it, so that notify cannot be missed.
        self.parked.fetch_add(1, Ordering::SeqCst);
        state.sleepers += 1;
        if self.pending.load(Ordering::SeqCst) == 0 && !state.shutdown {
            SchedCounters::bump(&self.counters.parks);
            state = self.job_ready.wait(state).unwrap();
        }
        state.sleepers -= 1;
        self.parked.fetch_sub(1, Ordering::SeqCst);
        !(state.shutdown && self.pending.load(Ordering::SeqCst) == 0)
    }

    /// Park a latch waiter until a job arrives, a job completes, or its
    /// latch opens (same registration protocol as [`Self::park_worker`];
    /// `seen` is the `completions` snapshot from before the probe).
    fn park_helper(&self, latch: &CountLatch, seen: usize) {
        let mut state = self.park.lock().unwrap();
        self.parked.fetch_add(1, Ordering::SeqCst);
        state.helper_sleepers += 1;
        if self.pending.load(Ordering::SeqCst) == 0
            && self.completions.load(Ordering::SeqCst) == seen
            && !latch.probe()
        {
            SchedCounters::bump(&self.counters.parks);
            // Bounded wait as a belt only: at the protocol level the
            // wakeup cannot be lost (the model in
            // `pp_check::models::deque` parks with *no* timeout and
            // explores clean), so the timeout merely bounds exposure
            // should a non-modeled reordering slip through on exotic
            // hardware.
            let (guard, _timeout) = self
                .helper_wake
                .wait_timeout(state, Duration::from_millis(1))
                .unwrap();
            state = guard;
        }
        state.helper_sleepers -= 1;
        self.parked.fetch_sub(1, Ordering::SeqCst);
        drop(state);
    }

    /// Signal shutdown and wake everyone (used by
    /// [`crate::ThreadPool::drop`] and the spawn-failure path).
    pub(crate) fn terminate(&self) {
        let mut state = self.park.lock().unwrap();
        state.shutdown = true;
        self.job_ready.notify_all();
        self.helper_wake.notify_all();
        drop(state);
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        // Free any never-consumed injector segments. The frame contract
        // means no *jobs* can be pending here, but the boxes themselves
        // must not leak if a segment was republished and never grabbed.
        drop(self.injector.grab_all());
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize) {
    CURRENT_REGISTRY.with(|current| {
        *current.borrow_mut() = Some(Arc::clone(&registry));
    });
    WORKER_SLOT.with(|slot| {
        *slot.borrow_mut() = Some((Arc::clone(&registry), index));
    });
    loop {
        while let Some(job) = registry.find_work() {
            // SAFETY: queued JobRefs are alive until their latch opens,
            // and `find_work` removed the job from its queue, so this
            // thread is its only executor.
            unsafe { job.execute() };
            registry.job_finished();
        }
        if !registry.park_worker() {
            return;
        }
        // Either woken for real work (found on the next scan) or a
        // `pending` transient (an injector consumer mid-republish):
        // give the mover a beat before rescanning.
        std::thread::yield_now();
    }
}

// ---------------------------------------------------------------------------
// Current registry (thread-local) and the global pool
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Set once per worker thread: which registry this thread works
    /// for, and its deque index there. Unlike `CURRENT_REGISTRY` this
    /// is never swapped by `install` — worker identity is permanent.
    static WORKER_SLOT: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

static GLOBAL_REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

/// Parse a `RAYON_NUM_THREADS` value. `Ok(None)` means "unset" (empty
/// string); `Ok(Some(n))` is a positive count clamped to
/// [`MAX_THREADS`]; `Err` explains why the value is malformed (`"0"`,
/// non-numeric, whitespace-only).
fn parse_thread_env(raw: &str) -> Result<Option<usize>, String> {
    if raw.is_empty() {
        return Ok(None);
    }
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(format!("whitespace-only value {raw:?}"));
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("\"0\" is not a worker count (unset the variable for the default)".to_owned()),
        Ok(n) => Ok(Some(n.min(MAX_THREADS))),
        Err(e) => Err(format!("unparseable value {raw:?} ({e})")),
    }
}

/// Worker count for the global pool: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
/// A malformed value warns once on stderr and falls back — silently
/// swallowing e.g. `RAYON_NUM_THREADS=O8` (typo'd letter O) used to
/// leave benchmarks running on an unintended thread count with no
/// signal at all.
fn global_thread_count() -> usize {
    if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
        match parse_thread_env(&raw) {
            Ok(Some(n)) => return n,
            Ok(None) => {}
            Err(reason) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring RAYON_NUM_THREADS: {reason}; \
                         using available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global_registry() -> Arc<Registry> {
    Arc::clone(GLOBAL_REGISTRY.get_or_init(|| {
        let threads = global_thread_count();
        let (registry, _handles) = Registry::spawn(threads).unwrap_or_else(|_| {
            // Last resort: a pool with no workers still executes
            // correctly (every driver runs inline).
            Registry::spawn(0).expect("zero-thread registry cannot fail")
        });
        // Global workers live for the process; handles are detached.
        registry
    }))
}

/// The registry parallel regions on this thread should use: the
/// installed pool if inside [`crate::ThreadPool::install`] (or a worker
/// thread), the global pool otherwise.
pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT_REGISTRY
        .with(|current| current.borrow().clone())
        .unwrap_or_else(global_registry)
}

/// Swap the thread's current registry, restoring the previous one on
/// drop (panic-safe [`crate::ThreadPool::install`]).
pub(crate) struct RegistryGuard {
    previous: Option<Arc<Registry>>,
}

impl RegistryGuard {
    pub(crate) fn enter(registry: Arc<Registry>) -> Self {
        let previous = CURRENT_REGISTRY.with(|current| current.borrow_mut().replace(registry));
        Self { previous }
    }
}

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        CURRENT_REGISTRY.with(|current| {
            *current.borrow_mut() = self.previous.take();
        });
    }
}

// ---------------------------------------------------------------------------
// StackJob + join
// ---------------------------------------------------------------------------

/// A job whose closure, result slot and latch live in the spawning
/// stack frame.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: CountLatch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: CountLatch::new(1),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self as *const (), Self::execute_erased)
    }

    /// # Safety
    /// `data` must point at a live `StackJob` whose closure has not
    /// been taken; the scheduler must hand it to at most one executor.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: the spawning frame blocks on the latch until this
        // function has run, so the referent is alive for its duration.
        let this = unsafe { &*(data as *const Self) };
        // SAFETY: exactly one thread executes the job (scheduler
        // contract), and the spawner only touches `func` after a
        // successful steal-back — which forfeits execution — so this
        // access is exclusive.
        let func = unsafe { (*this.func.get()).take() }.expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        // SAFETY: the result slot is written once, here, before the
        // latch opens; the waiter reads it only after a true probe,
        // which the latch's release/acquire pair orders after this.
        unsafe { *this.result.get() = Some(result) };
        this.latch.done_one();
    }

    /// Take the closure back out (only valid after a successful
    /// [`Registry::steal_back`], i.e. before any execution).
    ///
    /// # Safety
    /// No thread may have executed — or be executing — this job; a
    /// successful steal-back is the only way to establish that.
    unsafe fn take_func(&self) -> F {
        // SAFETY: per the contract above the job was reclaimed
        // unexecuted, so no other thread can reach this slot anymore.
        unsafe { (*self.func.get()).take() }.expect("job already executed")
    }

    /// Take the result out (only valid once the latch has opened).
    ///
    /// # Safety
    /// The job's latch must have opened (`wait_latch` returned): the
    /// executor is done with both slots and will not touch them again.
    unsafe fn take_result(&self) -> std::thread::Result<R> {
        // SAFETY: the open latch happens-after the executor's result
        // write, so this read is ordered and exclusive.
        unsafe { (*self.result.get()).take() }.expect("latch opened, result set")
    }
}

thread_local! {
    /// Depth of nested `join`s on this thread: past a threshold the
    /// fork side stops enqueuing and recursion runs inline (queue
    /// traffic for leaf-sized forks costs more than it balances).
    static JOIN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Nested-`join` depth beyond which forks run inline. `2^10` potential
/// leaves saturate any realistic worker count long before this.
const MAX_FORK_DEPTH: usize = 10;

/// Run two closures, potentially in parallel, and return both results —
/// rayon's fork-join primitive. The calling thread runs `a` itself; `b`
/// is offered to the pool and reclaimed (run inline) if no worker was
/// free by the time `a` finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    let depth = JOIN_DEPTH.with(Cell::get);
    if registry.is_sequential() || depth >= MAX_FORK_DEPTH {
        return (a(), b());
    }
    // Restore the depth even when `join_in` unwinds (a panicking
    // closure must not permanently push this — possibly long-lived
    // worker — thread over the inline-fork threshold).
    struct DepthGuard(usize);
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            JOIN_DEPTH.with(|d| d.set(self.0));
        }
    }
    let _guard = DepthGuard(depth);
    JOIN_DEPTH.with(|d| d.set(depth + 1));
    join_in(&registry, a, b)
}

fn join_in<A, B, RA, RB>(registry: &Registry, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_b_ref = job_b.as_job_ref();
    registry.inject(job_b_ref);

    let result_a = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(ra) => ra,
        Err(payload) => {
            // `job_b` must not be left in flight while this frame
            // unwinds: reclaim it unexecuted, or wait it out.
            if !registry.steal_back(&job_b_ref) {
                registry.wait_latch(&job_b.latch);
            }
            panic::resume_unwind(payload);
        }
    };

    if registry.steal_back(&job_b_ref) {
        // Nobody picked `b` up: run it inline on this thread.
        // SAFETY: a successful steal-back means the job never executed.
        let func = unsafe { job_b.take_func() };
        return (result_a, func());
    }
    registry.wait_latch(&job_b.latch);
    // SAFETY: the latch has opened, so the result slot is written.
    match unsafe { job_b.take_result() } {
        Ok(result_b) => (result_a, result_b),
        Err(payload) => panic::resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// Chunk batches (the parallel-iterator driver's entry point)
// ---------------------------------------------------------------------------

struct ChunkShared<F> {
    fold: *const F,
    latch: CountLatch,
}

/// One pre-split chunk of a parallel region: input slot, result slot,
/// and a pointer to the batch's shared fold + latch.
struct ChunkJob<C, R, F> {
    input: UnsafeCell<Option<C>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    shared: *const ChunkShared<F>,
}

impl<C, R, F> ChunkJob<C, R, F>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    /// # Safety
    /// `data` must point at a live `ChunkJob` (the `run_chunks` frame
    /// blocks on the batch latch, keeping the whole batch alive) that
    /// has not executed yet.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: the batch frame outlives the latch it waits on, and
        // the scheduler hands each chunk to exactly one thread.
        let this = unsafe { &*(data as *const Self) };
        // SAFETY: `shared` points into the same still-blocked frame.
        let shared = unsafe { &*this.shared };
        // SAFETY: only the executing thread touches this chunk's input
        // slot (written once at construction, taken once here).
        let input = unsafe { (*this.input.get()).take() }.expect("chunk executed twice");
        // SAFETY: the fold closure lives in the blocked frame and is
        // only accessed through shared references (`F: Sync`).
        let fold = unsafe { &*shared.fold };
        let result = panic::catch_unwind(AssertUnwindSafe(|| fold(input)));
        // SAFETY: written once, before this chunk's `done_one`; the
        // caller reads it only after the whole batch latch opened.
        unsafe { *this.result.get() = Some(result) };
        shared.latch.done_one();
    }
}

/// Run `fold` over every chunk, in parallel on `registry`, and return
/// the per-chunk results **in chunk order** (the order-preservation the
/// deterministic drivers rely on — results come back by slot, so which
/// worker ran which chunk never shows). The calling thread
/// participates. The first chunk panic is re-raised here after every
/// chunk finished.
pub(crate) fn run_chunks<C, R, F>(registry: &Registry, chunks: Vec<C>, fold: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    if chunks.len() <= 1 || registry.is_sequential() {
        return chunks.into_iter().map(fold).collect();
    }
    let shared = ChunkShared {
        fold: &fold as *const F,
        latch: CountLatch::new(chunks.len()),
    };
    // Lifetime erasure: jobs carry raw pointers into this frame, which
    // outlives them because `wait_latch` below blocks until every
    // chunk completed.
    let shared_ptr = &shared as *const ChunkShared<F>;
    let jobs: Vec<ChunkJob<C, R, F>> = chunks
        .into_iter()
        .map(|chunk| ChunkJob {
            input: UnsafeCell::new(Some(chunk)),
            result: UnsafeCell::new(None),
            shared: shared_ptr,
        })
        .collect();
    registry.inject_many(jobs.iter().map(|job| {
        JobRef::new(
            job as *const _ as *const (),
            ChunkJob::<C, R, F>::execute_erased,
        )
    }));
    registry.wait_latch(&shared.latch);

    let mut results = Vec::with_capacity(jobs.len());
    let mut first_panic = None;
    for job in &jobs {
        // SAFETY: the batch latch has opened, so every slot is written
        // and no other thread touches the jobs anymore.
        match unsafe { (*job.result.get()).take() }.expect("latch opened, result set") {
            Ok(r) => results.push(r),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        panic::resume_unwind(payload);
    }
    results
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

/// A fork-join scope: closures spawned on it may borrow from the
/// enclosing frame (`'scope`), and [`scope`] does not return until all
/// of them completed. Mirrors `rayon::scope`.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    latch: CountLatch,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

type ScopeBody<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

struct ScopeJob<'scope> {
    func: Option<ScopeBody<'scope>>,
    scope: *const Scope<'scope>,
}

impl<'scope> ScopeJob<'scope> {
    /// # Safety
    /// `data` must be the `Box::into_raw` of a `ScopeJob` handed to
    /// exactly one executor, and the scope it points into must still be
    /// blocked inside [`scope`].
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from Box::into_raw in `Scope::spawn` and
        // reaches exactly one executor, which reclaims the box here.
        let mut this = unsafe { Box::from_raw(data as *mut ScopeJob<'scope>) };
        // SAFETY: `scope()` blocks on its latch — which counts this job
        // — before dropping the `Scope`, so the pointer is live.
        let scope = unsafe { &*this.scope };
        let func = this.func.take().expect("scope job executed twice");
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| func(scope))) {
            let mut slot = scope.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        scope.latch.done_one();
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` onto the scope's pool; it may run on any worker (or
    /// a helping waiter) before [`scope`] returns.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.add(1);
        if self.registry.is_sequential() {
            // Inline execution keeps one-worker pools queue-free; the
            // latch bookkeeping stays identical.
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            self.latch.done_one();
            return;
        }
        let job = Box::new(ScopeJob {
            func: Some(Box::new(body)),
            scope: self as *const Scope<'scope>,
        });
        let data = Box::into_raw(job) as *const ();
        // Erasure: the job is freed by its executor; `scope` blocks on
        // the latch before returning, keeping `self` and all `'scope`
        // borrows alive until then.
        let execute: unsafe fn(*const ()) = ScopeJob::<'scope>::execute_erased;
        self.registry.inject(JobRef::new(data, execute));
    }
}

/// Create a fork-join scope on the current pool and run `op` inside it.
/// Returns `op`'s result once every [`Scope::spawn`]ed task completed;
/// the first panic from any task is propagated.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: current_registry(),
        latch: CountLatch::new(1),
        panic: Mutex::new(None),
        marker: std::marker::PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.latch.done_one(); // the `op` itself
    scope.registry.wait_latch(&scope.latch);
    let spawned_panic = scope.panic.lock().unwrap().take();
    match (result, spawned_panic) {
        (Ok(r), None) => r,
        (Err(payload), _) | (_, Some(payload)) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_thread_env(""), Ok(None));
        assert_eq!(parse_thread_env("4"), Ok(Some(4)));
        assert_eq!(parse_thread_env(" 8\n"), Ok(Some(8)));
        assert_eq!(parse_thread_env("999999999"), Ok(Some(MAX_THREADS)));
        assert!(parse_thread_env("0").is_err(), "zero is rejected loudly");
        assert!(parse_thread_env("abc").is_err(), "non-numeric is rejected");
        assert!(parse_thread_env("O8").is_err(), "typo'd letter O");
        assert!(parse_thread_env("-2").is_err(), "negative is rejected");
        assert!(
            parse_thread_env("   ").is_err(),
            "whitespace-only is malformed, not unset"
        );
    }

    // SAFETY: does nothing with its pointer; exists so tests can mint
    // JobRefs that are never executed.
    unsafe fn noop_execute(_data: *const ()) {}

    fn job_at(slot: &u8) -> JobRef {
        JobRef::new(slot as *const u8 as *const (), noop_execute)
    }

    #[test]
    fn injector_grab_returns_pushes_oldest_first() {
        let slots = [0u8; 3];
        let injector = Injector::new();
        for slot in &slots {
            injector.push(VecDeque::from([job_at(slot)]));
        }
        let grabbed = injector.grab_all();
        let order: Vec<*const ()> = grabbed.iter().map(|j| j.data).collect();
        let want: Vec<*const ()> = slots.iter().map(|s| s as *const u8 as *const ()).collect();
        assert_eq!(order, want, "chain reversal restores FIFO order");
        assert!(
            injector.grab_all().is_empty(),
            "grab leaves the chain empty"
        );
    }

    #[test]
    fn injector_steal_back_removes_exactly_the_job() {
        let slots = [0u8; 3];
        let injector = Injector::new();
        injector.push(slots.iter().map(job_at).collect());
        assert!(injector.steal_back(&job_at(&slots[1])));
        assert!(
            !injector.steal_back(&job_at(&slots[1])),
            "a reclaimed job cannot be reclaimed again"
        );
        let rest: Vec<*const ()> = injector.grab_all().iter().map(|j| j.data).collect();
        let want: Vec<*const ()> = [&slots[0], &slots[2]]
            .iter()
            .map(|s| *s as *const u8 as *const ())
            .collect();
        assert_eq!(rest, want, "the other jobs survive in order");
    }
}
