//! The fork-join execution core: registries (thread pools), jobs,
//! latches, [`join`], and [`scope`].
//!
//! The scheduler is deliberately simple — a *shared-queue chunk
//! scheduler* rather than per-worker chased deques: every pool owns one
//! mutex-protected FIFO of type-erased [`JobRef`]s; workers park on a
//! condvar when it is empty; any thread blocked on a latch *helps* by
//! draining the queue instead of sleeping. The parallel-iterator
//! drivers (see [`crate::iter`]) pre-split work into `O(threads)`
//! coarse chunks, so the queue sees tens of jobs per parallel region,
//! not millions — at that granularity a shared queue has no measurable
//! contention and none of the lock-free subtlety of a stealing deque.
//! Swapping the workspace `rayon` dependency to crates.io upgrades the
//! scheduler to real work stealing with no source changes.
//!
//! # Safety model
//!
//! Jobs borrow from the stack frame that spawned them ([`StackJob`],
//! chunk batches, scope closures). Every such frame *blocks until its
//! latch opens* before returning — including on the panic path — so a
//! job's referent outlives every thread that can observe the raw
//! pointers inside its [`JobRef`]. Results and panics travel back
//! through `UnsafeCell` slots written exactly once by the executing
//! thread before the latch is opened (the latch's release/acquire pair
//! publishes the write).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

#[cfg(not(pp_check))]
use std::sync::atomic::AtomicUsize;
#[cfg(not(pp_check))]
use std::sync::{Condvar, Mutex};
// Under `--cfg pp_check` the pool compiles against the model checker's
// instrumented drop-in shims (`pp_check::sync`): identical API, std
// passthrough outside a model, schedule-exploration hooks inside one.
#[cfg(pp_check)]
use pp_check::sync::{AtomicUsize, Condvar, Mutex};

/// Upper bound a builder accepts for [`num_threads`]
/// (`ThreadPoolBuilder::num_threads`): requests beyond this are
/// reported as a [`crate::ThreadPoolBuildError`] instead of attempting
/// thousands of OS spawns.
pub(crate) const MAX_THREADS: usize = 4096;

// ---------------------------------------------------------------------------
// Job references
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job living in some blocked stack frame
/// (or, for scope jobs, on the heap).
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: the referent is kept alive by the frame that created the job,
// which blocks on the job's latch before returning; execution happens
// at most once (the queue hands each JobRef to exactly one thread).
unsafe impl Send for JobRef {}

impl JobRef {
    pub(crate) fn new(data: *const (), execute: unsafe fn(*const ())) -> Self {
        Self { data, execute }
    }

    /// # Safety
    /// The referent must still be alive and not yet executed.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: the caller upholds this type's contract (referent
        // alive, at most one execution), which is exactly what the
        // erased entry point requires of `data`.
        unsafe { (self.execute)(self.data) }
    }
}

// ---------------------------------------------------------------------------
// Latches
// ---------------------------------------------------------------------------

/// A countdown latch: opens when `remaining` reaches zero. Waiters
/// *help* (drain the pool queue) instead of blocking while work is
/// available; see [`Registry::wait_latch`].
pub(crate) struct CountLatch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    pub(crate) fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    /// Add `n` pending completions (used by [`crate::scope`], whose job
    /// count is not known up front).
    pub(crate) fn add(&self, n: usize) {
        // Ordering: `Relaxed` suffices — `add` always runs *before* the
        // jobs it accounts for are published to the queue, and the
        // queue mutex orders the publication; the count can therefore
        // never be observed too low by a completing job. Verified by
        // exhaustive weakened-ordering exploration of the scope model
        // (`pp_check::models::scope`), which calls `add` with `Relaxed`
        // semantics and stays race-free.
        self.remaining.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one completion; the last completion wakes every waiter.
    ///
    /// The decrement happens **while holding the latch lock**: a waiter
    /// that observes `probe() == 0` therefore knows the final notifier
    /// is either inside this critical section or already past it, and
    /// [`CountLatch::sync_before_teardown`] (one lock round-trip) is
    /// enough to let the latch's stack frame be freed safely. Without
    /// the lock around the decrement, a spinning waiter could see zero
    /// and pop the frame while the notifier is still between its
    /// `fetch_sub` and its `notify_all` — a use-after-free.
    pub(crate) fn done_one(&self) {
        let guard = self.lock.lock().unwrap();
        // Ordering: `AcqRel`. The `Release` half publishes the result
        // writes the executing thread made before `done_one`; the
        // `Acquire` half makes the last decrementer see every earlier
        // notifier's writes before it wakes the waiters. The model
        // checker proves this pair is load-bearing: the probe-only
        // model (`pp_check::models::latch::probe_publish_model`) is
        // clean as declared and races when the pair is demoted to
        // `Relaxed` (`latch_probe_orderings_are_load_bearing`).
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.cond.notify_all();
        }
        drop(guard);
    }

    /// True once every completion has been recorded. `Acquire` pairs
    /// with the `AcqRel` decrement so result writes made before
    /// [`CountLatch::done_one`] are visible after a `true` probe.
    pub(crate) fn probe(&self) -> bool {
        // Ordering: `Acquire`, the read half of the publication edge
        // described on `done_one` — demoting either side to `Relaxed`
        // makes the probe-only latch model race on the result slot.
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Rendezvous with the final [`CountLatch::done_one`]: after this
    /// returns, no completing thread will touch the latch again, so the
    /// frame that owns it may be dropped. Call exactly once, after
    /// `probe()` returned true.
    fn sync_before_teardown(&self) {
        drop(self.lock.lock().unwrap());
    }

    /// Park briefly on the latch condvar (bounded, so a missed wakeup
    /// can only cost a millisecond, never a hang).
    fn park(&self) {
        let guard = self.lock.lock().unwrap();
        if !self.probe() {
            let _ = self
                .cond
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Registry (one per pool)
// ---------------------------------------------------------------------------

struct SharedQueue {
    queue: VecDeque<JobRef>,
    shutdown: bool,
}

/// One thread pool's shared state: the job queue and the worker count.
pub(crate) struct Registry {
    shared: Mutex<SharedQueue>,
    job_ready: Condvar,
    num_threads: usize,
    /// `num_threads` capped by the machine's available parallelism:
    /// the fan-out the chunk drivers size for. Workers beyond the core
    /// count can only add contention, so an oversubscribed pool (e.g.
    /// 8 workers on a 1-core CI container) keeps its truthful
    /// `num_threads` but schedules coarser chunks.
    parallelism: usize,
}

impl Registry {
    /// Spawn `num_threads` workers around a fresh registry. On a spawn
    /// failure the already-started workers are shut down before the
    /// error is returned (the builder surfaces it as a
    /// [`crate::ThreadPoolBuildError`]).
    pub(crate) fn spawn(
        num_threads: usize,
    ) -> std::io::Result<(Arc<Registry>, Vec<std::thread::JoinHandle<()>>)> {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let registry = Arc::new(Registry {
            shared: Mutex::new(SharedQueue {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            // Report at least 1 even for the zero-worker fallback
            // registry: rayon's contract is `current_num_threads() >=
            // 1`, and callers divide by it (block sizing in scans). A
            // zero-worker pool reports 1 and `is_sequential()` routes
            // every region inline, so no job ever needs a worker.
            num_threads: num_threads.max(1),
            parallelism: num_threads.min(hardware).max(1),
        });
        let mut handles = Vec::with_capacity(num_threads);
        for i in 0..num_threads {
            let reg = Arc::clone(&registry);
            let spawned = std::thread::Builder::new()
                .name(format!("pp-rayon-{i}"))
                .spawn(move || worker_loop(reg));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    registry.terminate();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok((registry, handles))
    }

    /// The pool's worker count (what [`crate::current_num_threads`]
    /// reports inside this pool).
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The fan-out drivers should size chunk counts for (worker count
    /// capped by hardware cores; see the field docs).
    pub(crate) fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// True when parallel regions should just run inline: a one-worker
    /// pool gains nothing from queue round-trips.
    pub(crate) fn is_sequential(&self) -> bool {
        self.num_threads <= 1
    }

    /// Enqueue one job and wake one worker.
    pub(crate) fn inject(&self, job: JobRef) {
        let mut shared = self.shared.lock().unwrap();
        shared.queue.push_back(job);
        drop(shared);
        self.job_ready.notify_one();
    }

    /// Enqueue a batch and wake every worker.
    pub(crate) fn inject_many<I: IntoIterator<Item = JobRef>>(&self, jobs: I) {
        let mut shared = self.shared.lock().unwrap();
        shared.queue.extend(jobs);
        drop(shared);
        self.job_ready.notify_all();
    }

    /// Pop the oldest pending job, if any.
    pub(crate) fn try_pop(&self) -> Option<JobRef> {
        self.shared.lock().unwrap().queue.pop_front()
    }

    /// Remove `job` from the queue if no thread has claimed it yet —
    /// the [`join`] caller "steals back" its second closure to run it
    /// inline instead of waiting.
    pub(crate) fn steal_back(&self, job: &JobRef) -> bool {
        let mut shared = self.shared.lock().unwrap();
        if let Some(pos) = shared
            .queue
            .iter()
            .position(|j| std::ptr::eq(j.data, job.data))
        {
            shared.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// Block until `latch` opens, executing queued jobs in the
    /// meantime. Helping keeps nested parallel regions live-locked-free:
    /// a worker waiting on an inner region's latch drains the very jobs
    /// that open it.
    pub(crate) fn wait_latch(&self, latch: &CountLatch) {
        while !latch.probe() {
            match self.try_pop() {
                // SAFETY: queued JobRefs are alive until their latch
                // opens, and the queue hands each to one thread only.
                Some(job) => unsafe { job.execute() },
                None => latch.park(),
            }
        }
        // The caller will typically free the latch's frame next; wait
        // out the final notifier's critical section first.
        latch.sync_before_teardown();
    }

    /// Signal shutdown and wake every worker (used by
    /// [`crate::ThreadPool::drop`] and the spawn-failure path).
    pub(crate) fn terminate(&self) {
        self.shared.lock().unwrap().shutdown = true;
        self.job_ready.notify_all();
    }
}

fn worker_loop(registry: Arc<Registry>) {
    CURRENT_REGISTRY.with(|current| {
        *current.borrow_mut() = Some(Arc::clone(&registry));
    });
    loop {
        let job = {
            let mut shared = registry.shared.lock().unwrap();
            loop {
                if let Some(job) = shared.queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown {
                    break None;
                }
                shared = registry.job_ready.wait(shared).unwrap();
            }
        };
        match job {
            // SAFETY: see `wait_latch`.
            Some(job) => unsafe { job.execute() },
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Current registry (thread-local) and the global pool
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

static GLOBAL_REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

/// Worker count for the global pool: `RAYON_NUM_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
fn global_thread_count() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .map(|n| n.min(MAX_THREADS))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn global_registry() -> Arc<Registry> {
    Arc::clone(GLOBAL_REGISTRY.get_or_init(|| {
        let threads = global_thread_count();
        let (registry, _handles) = Registry::spawn(threads).unwrap_or_else(|_| {
            // Last resort: a pool with no workers still executes
            // correctly (every driver runs inline).
            Registry::spawn(0).expect("zero-thread registry cannot fail")
        });
        // Global workers live for the process; handles are detached.
        registry
    }))
}

/// The registry parallel regions on this thread should use: the
/// installed pool if inside [`crate::ThreadPool::install`] (or a worker
/// thread), the global pool otherwise.
pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT_REGISTRY
        .with(|current| current.borrow().clone())
        .unwrap_or_else(global_registry)
}

/// Swap the thread's current registry, restoring the previous one on
/// drop (panic-safe [`crate::ThreadPool::install`]).
pub(crate) struct RegistryGuard {
    previous: Option<Arc<Registry>>,
}

impl RegistryGuard {
    pub(crate) fn enter(registry: Arc<Registry>) -> Self {
        let previous = CURRENT_REGISTRY.with(|current| current.borrow_mut().replace(registry));
        Self { previous }
    }
}

impl Drop for RegistryGuard {
    fn drop(&mut self) {
        CURRENT_REGISTRY.with(|current| {
            *current.borrow_mut() = self.previous.take();
        });
    }
}

// ---------------------------------------------------------------------------
// StackJob + join
// ---------------------------------------------------------------------------

/// A job whose closure, result slot and latch live in the spawning
/// stack frame.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: CountLatch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(func: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: CountLatch::new(1),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef::new(self as *const Self as *const (), Self::execute_erased)
    }

    /// # Safety
    /// `data` must point at a live `StackJob` whose closure has not
    /// been taken; the queue must hand it to at most one executor.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: the spawning frame blocks on the latch until this
        // function has run, so the referent is alive for its duration.
        let this = unsafe { &*(data as *const Self) };
        // SAFETY: exactly one thread executes the job (queue contract),
        // and the spawner only touches `func` after a successful
        // steal-back — which forfeits execution — so this access is
        // exclusive.
        let func = unsafe { (*this.func.get()).take() }.expect("job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        // SAFETY: the result slot is written once, here, before the
        // latch opens; the waiter reads it only after a true probe,
        // which the latch's release/acquire pair orders after this.
        unsafe { *this.result.get() = Some(result) };
        this.latch.done_one();
    }

    /// Take the closure back out (only valid after a successful
    /// [`Registry::steal_back`], i.e. before any execution).
    ///
    /// # Safety
    /// No thread may have executed — or be executing — this job; a
    /// successful steal-back is the only way to establish that.
    unsafe fn take_func(&self) -> F {
        // SAFETY: per the contract above the job was reclaimed
        // unexecuted, so no other thread can reach this slot anymore.
        unsafe { (*self.func.get()).take() }.expect("job already executed")
    }

    /// Take the result out (only valid once the latch has opened).
    ///
    /// # Safety
    /// The job's latch must have opened (`wait_latch` returned): the
    /// executor is done with both slots and will not touch them again.
    unsafe fn take_result(&self) -> std::thread::Result<R> {
        // SAFETY: the open latch happens-after the executor's result
        // write, so this read is ordered and exclusive.
        unsafe { (*self.result.get()).take() }.expect("latch opened, result set")
    }
}

thread_local! {
    /// Depth of nested `join`s on this thread: past a threshold the
    /// fork side stops enqueuing and recursion runs inline (queue
    /// traffic for leaf-sized forks costs more than it balances).
    static JOIN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Nested-`join` depth beyond which forks run inline. `2^10` potential
/// leaves saturate any realistic worker count long before this.
const MAX_FORK_DEPTH: usize = 10;

/// Run two closures, potentially in parallel, and return both results —
/// rayon's fork-join primitive. The calling thread runs `a` itself; `b`
/// is offered to the pool and reclaimed (run inline) if no worker was
/// free by the time `a` finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    let depth = JOIN_DEPTH.with(Cell::get);
    if registry.is_sequential() || depth >= MAX_FORK_DEPTH {
        return (a(), b());
    }
    // Restore the depth even when `join_in` unwinds (a panicking
    // closure must not permanently push this — possibly long-lived
    // worker — thread over the inline-fork threshold).
    struct DepthGuard(usize);
    impl Drop for DepthGuard {
        fn drop(&mut self) {
            JOIN_DEPTH.with(|d| d.set(self.0));
        }
    }
    let _guard = DepthGuard(depth);
    JOIN_DEPTH.with(|d| d.set(depth + 1));
    join_in(&registry, a, b)
}

fn join_in<A, B, RA, RB>(registry: &Registry, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(b);
    let job_b_ref = job_b.as_job_ref();
    registry.inject(job_b_ref);

    let result_a = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(ra) => ra,
        Err(payload) => {
            // `job_b` must not be left in flight while this frame
            // unwinds: reclaim it unexecuted, or wait it out.
            if !registry.steal_back(&job_b_ref) {
                registry.wait_latch(&job_b.latch);
            }
            panic::resume_unwind(payload);
        }
    };

    if registry.steal_back(&job_b_ref) {
        // Nobody picked `b` up: run it inline on this thread.
        // SAFETY: a successful steal-back means the job never executed.
        let func = unsafe { job_b.take_func() };
        return (result_a, func());
    }
    registry.wait_latch(&job_b.latch);
    // SAFETY: the latch has opened, so the result slot is written.
    match unsafe { job_b.take_result() } {
        Ok(result_b) => (result_a, result_b),
        Err(payload) => panic::resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// Chunk batches (the parallel-iterator driver's entry point)
// ---------------------------------------------------------------------------

struct ChunkShared<F> {
    fold: *const F,
    latch: CountLatch,
}

/// One pre-split chunk of a parallel region: input slot, result slot,
/// and a pointer to the batch's shared fold + latch.
struct ChunkJob<C, R, F> {
    input: UnsafeCell<Option<C>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    shared: *const ChunkShared<F>,
}

impl<C, R, F> ChunkJob<C, R, F>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    /// # Safety
    /// `data` must point at a live `ChunkJob` (the `run_chunks` frame
    /// blocks on the batch latch, keeping the whole batch alive) that
    /// has not executed yet.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: the batch frame outlives the latch it waits on, and
        // the queue hands each chunk to exactly one thread.
        let this = unsafe { &*(data as *const Self) };
        // SAFETY: `shared` points into the same still-blocked frame.
        let shared = unsafe { &*this.shared };
        // SAFETY: only the executing thread touches this chunk's input
        // slot (written once at construction, taken once here).
        let input = unsafe { (*this.input.get()).take() }.expect("chunk executed twice");
        // SAFETY: the fold closure lives in the blocked frame and is
        // only accessed through shared references (`F: Sync`).
        let fold = unsafe { &*shared.fold };
        let result = panic::catch_unwind(AssertUnwindSafe(|| fold(input)));
        // SAFETY: written once, before this chunk's `done_one`; the
        // caller reads it only after the whole batch latch opened.
        unsafe { *this.result.get() = Some(result) };
        shared.latch.done_one();
    }
}

/// Run `fold` over every chunk, in parallel on `registry`, and return
/// the per-chunk results **in chunk order** (the order-preservation the
/// deterministic drivers rely on). The calling thread participates.
/// The first chunk panic is re-raised here after every chunk finished.
pub(crate) fn run_chunks<C, R, F>(registry: &Registry, chunks: Vec<C>, fold: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(C) -> R + Sync,
{
    if chunks.len() <= 1 || registry.is_sequential() {
        return chunks.into_iter().map(fold).collect();
    }
    let shared = ChunkShared {
        fold: &fold as *const F,
        latch: CountLatch::new(chunks.len()),
    };
    // Lifetime erasure: jobs carry raw pointers into this frame, which
    // outlives them because `wait_latch` below blocks until every
    // chunk completed.
    let shared_ptr = &shared as *const ChunkShared<F>;
    let jobs: Vec<ChunkJob<C, R, F>> = chunks
        .into_iter()
        .map(|chunk| ChunkJob {
            input: UnsafeCell::new(Some(chunk)),
            result: UnsafeCell::new(None),
            shared: shared_ptr,
        })
        .collect();
    registry.inject_many(jobs.iter().map(|job| {
        JobRef::new(
            job as *const _ as *const (),
            ChunkJob::<C, R, F>::execute_erased,
        )
    }));
    registry.wait_latch(&shared.latch);

    let mut results = Vec::with_capacity(jobs.len());
    let mut first_panic = None;
    for job in &jobs {
        // SAFETY: the batch latch has opened, so every slot is written
        // and no other thread touches the jobs anymore.
        match unsafe { (*job.result.get()).take() }.expect("latch opened, result set") {
            Ok(r) => results.push(r),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        panic::resume_unwind(payload);
    }
    results
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

/// A fork-join scope: closures spawned on it may borrow from the
/// enclosing frame (`'scope`), and [`scope`] does not return until all
/// of them completed. Mirrors `rayon::scope`.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    latch: CountLatch,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

type ScopeBody<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

struct ScopeJob<'scope> {
    func: Option<ScopeBody<'scope>>,
    scope: *const Scope<'scope>,
}

impl<'scope> ScopeJob<'scope> {
    /// # Safety
    /// `data` must be the `Box::into_raw` of a `ScopeJob` handed to
    /// exactly one executor, and the scope it points into must still be
    /// blocked inside [`scope`].
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: `data` came from Box::into_raw in `Scope::spawn` and
        // reaches exactly one executor, which reclaims the box here.
        let mut this = unsafe { Box::from_raw(data as *mut ScopeJob<'scope>) };
        // SAFETY: `scope()` blocks on its latch — which counts this job
        // — before dropping the `Scope`, so the pointer is live.
        let scope = unsafe { &*this.scope };
        let func = this.func.take().expect("scope job executed twice");
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| func(scope))) {
            let mut slot = scope.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        scope.latch.done_one();
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` onto the scope's pool; it may run on any worker (or
    /// a helping waiter) before [`scope`] returns.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.add(1);
        if self.registry.is_sequential() {
            // Inline execution keeps one-worker pools queue-free; the
            // latch bookkeeping stays identical.
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            self.latch.done_one();
            return;
        }
        let job = Box::new(ScopeJob {
            func: Some(Box::new(body)),
            scope: self as *const Scope<'scope>,
        });
        let data = Box::into_raw(job) as *const ();
        // Erasure: the job is freed by its executor; `scope` blocks on
        // the latch before returning, keeping `self` and all `'scope`
        // borrows alive until then.
        let execute: unsafe fn(*const ()) = ScopeJob::<'scope>::execute_erased;
        self.registry.inject(JobRef::new(data, execute));
    }
}

/// Create a fork-join scope on the current pool and run `op` inside it.
/// Returns `op`'s result once every [`Scope::spawn`]ed task completed;
/// the first panic from any task is propagated.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: current_registry(),
        latch: CountLatch::new(1),
        panic: Mutex::new(None),
        marker: std::marker::PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.latch.done_one(); // the `op` itself
    scope.registry.wait_latch(&scope.latch);
    let spawned_panic = scope.panic.lock().unwrap().take();
    match (result, spawned_panic) {
        (Ok(r), None) => r,
        (Err(payload), _) | (_, Some(payload)) => panic::resume_unwind(payload),
    }
}
