//! Parallel iterators over *splittable producers*.
//!
//! The execution model mirrors (a trimmed) rayon: a source collection
//! is wrapped in a [`Producer`] — an exact-length, `split_at`-able view
//! — adaptors (`map`, `zip`, `enumerate`, …) wrap producers in
//! producer combinators, and every consumer (`for_each`, `collect`,
//! `reduce`, …) drives the pipeline by splitting the producer into
//! `O(threads)` contiguous chunks, folding each chunk sequentially on a
//! pool worker (`pool::run_chunks`), and combining the
//! per-chunk results **in chunk order**. In-order combining is what
//! keeps every consumer deterministic and sequential-equivalent: a
//! `collect` or `par_extend` returns exactly the sequential order, a
//! `min`/`max` breaks ties exactly like `Iterator::min`/`max`, and a
//! `reduce` regroups (but never reorders) an associative combine.
//!
//! Length-erasing adaptors (`filter`, `filter_map`, `flat_map_iter`)
//! switch the pipeline to [`UnindexedPar`]: the *base* producer is
//! still split into balanced chunks, and each chunk's sequential
//! iterator is post-processed by a composed [`ChunkMap`] transform, so
//! filtering pipelines still run on every worker.
//!
//! Grain control: [`IndexedPar::with_min_len`] / `with_max_len` bound
//! the per-chunk element count (measured in *base* items for unindexed
//! pipelines), so hot loops can prevent both over-splitting of tiny
//! inputs and under-splitting of skewed ones.
//!
//! Deviation from rayon proper: adaptor closures must be `Clone`
//! (chunks own a clone of the pipeline), which every capture-by-
//! reference closure is. Code written against this shim compiles
//! unchanged against crates.io rayon — the bounds here are strictly
//! tighter.

#![allow(clippy::type_complexity)]

use crate::pool;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::sync::Arc;

/// Chunks per worker a driver aims for: enough slack that uneven chunk
/// costs level out across the shared queue, few enough that queue
/// traffic stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Item;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// `c.par_iter()` sugar for collections with a parallel ref iterator.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

/// `c.par_iter_mut()` sugar.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// The minimal cross-family parallel-iterator contract: everything the
/// generic sinks ([`ParallelExtend`], [`FromParallelIterator`]) need.
/// The adaptor/consumer surface lives as inherent methods on
/// [`IndexedPar`] and [`UnindexedPar`].
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Append every produced item to `out`, preserving the sequential
    /// order, computing chunks in parallel.
    fn drive_append(self, out: &mut Vec<Self::Item>);
}

/// Marker refinement for exact-length iterators (rayon's
/// `IndexedParallelIterator`), implemented by [`IndexedPar`].
pub trait IndexedParallelIterator: ParallelIterator {}

/// Rayon's `ParallelExtend`: extend a collection from a parallel
/// iterator, reusing existing capacity.
pub trait ParallelExtend<T: Send> {
    fn par_extend<I>(&mut self, par_iter: I)
    where
        I: IntoParallelIterator<Item = T>;
}

impl<T: Send> ParallelExtend<T> for Vec<T> {
    fn par_extend<I>(&mut self, par_iter: I)
    where
        I: IntoParallelIterator<Item = T>,
    {
        par_iter.into_par_iter().drive_append(self);
    }
}

/// Rayon's `FromParallelIterator`: the `collect` target contract.
pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I>(par_iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(par_iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>,
    {
        let mut out = Vec::new();
        par_iter.into_par_iter().drive_append(&mut out);
        out
    }
}

// ---------------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------------

/// An exact-length, splittable source of items — the unit the chunk
/// driver splits and ships to workers. Public only because it appears
/// in the adaptor types; user code never implements it.
pub trait Producer: Send + Sized {
    type Item: Send;
    type IntoIter: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, index)` and `[index, len)`. `index <= len`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// The chunk's sequential iterator.
    fn into_seq_iter(self) -> Self::IntoIter;
}

/// A raw pointer that asserts cross-thread use is safe because every
/// chunk writes a disjoint index range.
struct SendPtr<T>(*mut T);
// SAFETY: every chunk writes only its own disjoint index range (see the
// drivers below), so concurrent use never aliases a slot.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}

/// Pick the per-chunk element count for a driver invocation.
fn chunk_len(len: usize, min_len: usize, max_len: usize, threads: usize) -> usize {
    let target = len.div_ceil((threads * CHUNKS_PER_THREAD).max(1));
    let lo = min_len.max(1);
    let hi = max_len.max(lo);
    target.clamp(lo, hi)
}

/// Split `producer` into grain-bounded chunks and fold each on the
/// current pool, returning per-chunk results in chunk order. `fold`
/// receives each chunk's base-item offset (used by the in-place
/// `collect` writer).
fn run_split<P, R, F>(producer: P, min_len: usize, max_len: usize, fold: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    let len = producer.len();
    let registry = pool::current_registry();
    let chunk = chunk_len(len, min_len, max_len, registry.parallelism());
    if registry.is_sequential() || len <= chunk {
        return vec![fold(0, producer)];
    }
    let mut chunks = Vec::with_capacity(len.div_ceil(chunk));
    let mut rest = producer;
    let mut offset = 0usize;
    while rest.len() > chunk {
        let (head, tail) = rest.split_at(chunk);
        chunks.push((offset, head));
        offset += chunk;
        rest = tail;
    }
    chunks.push((offset, rest));
    pool::run_chunks(&registry, chunks, move |(off, part)| fold(off, part))
}

// ---- base producers -------------------------------------------------------

/// Producer over an integer range.
pub struct RangeProducer<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;
            fn len(&self) -> usize {
                let (s, e) = (self.start as i128, self.end as i128);
                if e > s { (e - s) as usize } else { 0 }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                debug_assert!(index <= self.len());
                let mid = ((self.start as i128) + index as i128) as $t;
                (
                    RangeProducer { start: self.start, end: mid },
                    RangeProducer { start: mid, end: self.end },
                )
            }
            fn into_seq_iter(self) -> Self::IntoIter {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = IndexedPar<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                IndexedPar::new(RangeProducer { start: self.start, end: self.end })
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            type Iter = IndexedPar<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let (start, end) = self.into_inner();
                let producer = if start > end {
                    RangeProducer { start, end: start }
                } else {
                    assert!(
                        end < <$t>::MAX,
                        "the shim cannot iterate an inclusive range ending at the type's MAX",
                    );
                    RangeProducer { start, end: end + 1 }
                };
                IndexedPar::new(producer)
            }
        }
    )*};
}
impl_range_producer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceProducer { slice: l }, SliceProducer { slice: r })
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: l }, SliceMutProducer { slice: r })
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

/// Owns a `Vec`'s allocation (not its elements); freed when the last
/// producer/iterator split drops.
struct RawVecAlloc<T> {
    ptr: *mut T,
    cap: usize,
}

impl<T> Drop for RawVecAlloc<T> {
    fn drop(&mut self) {
        // SAFETY: reconstructs the original allocation with length 0 —
        // elements were moved out (or dropped) by the producers.
        unsafe { drop(Vec::from_raw_parts(self.ptr, 0, self.cap)) }
    }
}
// SAFETY: the alloc itself is only ever *dropped* through the Arc (no
// element access); element reads go through producers/iterators that
// exclusively cover disjoint subranges of `T: Send` elements.
unsafe impl<T: Send> Send for RawVecAlloc<T> {}
unsafe impl<T: Send> Sync for RawVecAlloc<T> {}

/// Producer over an owned `Vec<T>`: chunks move elements out by
/// pointer; unconsumed elements are dropped by the producer/iterator
/// drop, and the allocation by the shared `RawVecAlloc`.
pub struct VecProducer<T: Send> {
    alloc: Arc<RawVecAlloc<T>>,
    start: *mut T,
    len: usize,
}

// SAFETY: a producer owns the `[start, start+len)` subrange exclusively
// (splits partition the range), so moving it across threads moves `len`
// `T: Send` values and an Arc.
unsafe impl<T: Send> Send for VecProducer<T> {}

impl<T: Send> Drop for VecProducer<T> {
    fn drop(&mut self) {
        // SAFETY: this producer exclusively covers `[start, start+len)`
        // and none of those elements were read out (reads only happen
        // via `into_seq_iter`, which forgets the producer).
        unsafe { std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(self.start, self.len)) }
    }
}

/// Moving iterator over one `VecProducer` chunk. Termination is by
/// remaining count, not pointer equality, so zero-sized element types
/// (where `ptr.add(1)` does not move) still yield every element.
pub struct VecChunkIter<T: Send> {
    _alloc: Arc<RawVecAlloc<T>>,
    cur: *mut T,
    remaining: usize,
}

// SAFETY: like its producer, the iterator exclusively owns the
// `[cur, cur+remaining)` subrange of `T: Send` elements.
unsafe impl<T: Send> Send for VecChunkIter<T> {}

impl<T: Send> Iterator for VecChunkIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.remaining == 0 {
            return None;
        }
        // SAFETY: `remaining` elements starting at `cur` belong
        // exclusively to this chunk; each is read exactly once.
        unsafe {
            let item = std::ptr::read(self.cur);
            self.cur = self.cur.add(1);
            self.remaining -= 1;
            Some(item)
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T: Send> Drop for VecChunkIter<T> {
    fn drop(&mut self) {
        while self.next().is_some() {}
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = VecChunkIter<T>;
    fn len(&self) -> usize {
        self.len
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        debug_assert!(index <= self.len);
        let this = ManuallyDrop::new(self);
        // SAFETY: moves the Arc out of the forgotten `this`; the two
        // halves exclusively cover the original range.
        let alloc = unsafe { std::ptr::read(&this.alloc) };
        let left = VecProducer {
            alloc: Arc::clone(&alloc),
            start: this.start,
            len: index,
        };
        let right = VecProducer {
            alloc,
            // SAFETY: `index <= len` (split contract), so the offset
            // stays inside this producer's owned range.
            start: unsafe { this.start.add(index) },
            len: this.len - index,
        };
        (left, right)
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        let this = ManuallyDrop::new(self);
        // SAFETY: as in `split_at`; the iterator takes over the range.
        let alloc = unsafe { std::ptr::read(&this.alloc) };
        VecChunkIter {
            _alloc: alloc,
            cur: this.start,
            remaining: this.len,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IndexedPar<VecProducer<T>>;
    fn into_par_iter(self) -> Self::Iter {
        let mut vec = ManuallyDrop::new(self);
        let (ptr, len, cap) = (vec.as_mut_ptr(), vec.len(), vec.capacity());
        IndexedPar::new(VecProducer {
            alloc: Arc::new(RawVecAlloc { ptr, cap }),
            start: ptr,
            len,
        })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = IndexedPar<SliceProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        IndexedPar::new(SliceProducer { slice: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = IndexedPar<SliceProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        IndexedPar::new(SliceProducer { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = IndexedPar<SliceMutProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        IndexedPar::new(SliceMutProducer { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = IndexedPar<SliceMutProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        IndexedPar::new(SliceMutProducer { slice: self })
    }
}

// ---- adaptor producers ----------------------------------------------------

/// `map` producer.
pub struct MapProducer<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type IntoIter = std::iter::Map<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapProducer {
                base: l,
                f: self.f.clone(),
            },
            MapProducer { base: r, f: self.f },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.base.into_seq_iter().map(self.f)
    }
}

/// `zip` producer (both sides pre-trimmed to equal length).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.a.into_seq_iter().zip(self.b.into_seq_iter())
    }
}

/// `enumerate` producer.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<std::ops::Range<usize>, P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        let n = self.base.len();
        (self.offset..self.offset + n).zip(self.base.into_seq_iter())
    }
}

/// `copied` producer.
pub struct CopiedProducer<P> {
    base: P,
}

impl<'a, T, P> Producer for CopiedProducer<P>
where
    T: Copy + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Copied<P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (CopiedProducer { base: l }, CopiedProducer { base: r })
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.base.into_seq_iter().copied()
    }
}

/// `cloned` producer.
pub struct ClonedProducer<P> {
    base: P,
}

impl<'a, T, P> Producer for ClonedProducer<P>
where
    T: Clone + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Cloned<P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (ClonedProducer { base: l }, ClonedProducer { base: r })
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.base.into_seq_iter().cloned()
    }
}

/// `update` producer.
pub struct UpdateProducer<P, F> {
    base: P,
    f: F,
}

/// Sequential side of [`UpdateProducer`].
pub struct UpdateIter<I, F> {
    it: I,
    f: F,
}

impl<I: Iterator, F: Fn(&mut I::Item)> Iterator for UpdateIter<I, F> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.it.next().map(|mut item| {
            (self.f)(&mut item);
            item
        })
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.it.size_hint()
    }
}

impl<P, F> Producer for UpdateProducer<P, F>
where
    P: Producer,
    F: Fn(&mut P::Item) + Clone + Send,
{
    type Item = P::Item;
    type IntoIter = UpdateIter<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            UpdateProducer {
                base: l,
                f: self.f.clone(),
            },
            UpdateProducer { base: r, f: self.f },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        UpdateIter {
            it: self.base.into_seq_iter(),
            f: self.f,
        }
    }
}

/// `map_init` producer: `init` runs once per chunk, the mapper borrows
/// the chunk-local state for every item — the worker-local-state shape
/// `PreparedSolver::solve_batch` uses for its scratch workspaces.
pub struct MapInitProducer<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

/// Sequential side of [`MapInitProducer`].
pub struct MapInitIter<I, T, F> {
    it: I,
    state: T,
    f: F,
}

impl<I, T, R, F> Iterator for MapInitIter<I, T, F>
where
    I: Iterator,
    F: Fn(&mut T, I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        let item = self.it.next()?;
        Some((self.f)(&mut self.state, item))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.it.size_hint()
    }
}

impl<P, INIT, T, R, F> Producer for MapInitProducer<P, INIT, F>
where
    P: Producer,
    INIT: Fn() -> T + Clone + Send,
    F: Fn(&mut T, P::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    type IntoIter = MapInitIter<P::IntoIter, T, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapInitProducer {
                base: l,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            MapInitProducer {
                base: r,
                init: self.init,
                f: self.f,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        MapInitIter {
            it: self.base.into_seq_iter(),
            state: (self.init)(),
            f: self.f,
        }
    }
}

// ---------------------------------------------------------------------------
// IndexedPar: the exact-length parallel iterator
// ---------------------------------------------------------------------------

/// An exact-length parallel iterator over a splittable [`Producer`].
pub struct IndexedPar<P: Producer> {
    producer: P,
    min_len: usize,
    max_len: usize,
}

impl<P: Producer> IndexedPar<P> {
    pub(crate) fn new(producer: P) -> Self {
        Self {
            producer,
            min_len: 1,
            max_len: usize::MAX,
        }
    }

    /// Number of items this iterator will produce.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// True iff no items will be produced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lower-bound the per-chunk item count: chunks smaller than `n`
    /// are not split off, so per-item work below the fork-join overhead
    /// is batched (the grain-size knob of the workspace's hot loops).
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.min_len = n.max(1);
        self
    }

    /// Upper-bound the per-chunk item count (force extra splits).
    pub fn with_max_len(mut self, n: usize) -> Self {
        self.max_len = n.max(1);
        self
    }

    // ---- indexed adaptors ----

    pub fn map<R, F>(self, f: F) -> IndexedPar<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        IndexedPar {
            producer: MapProducer {
                base: self.producer,
                f,
            },
            min_len,
            max_len,
        }
    }

    pub fn zip<Z, Q>(self, other: Z) -> IndexedPar<ZipProducer<P, Q>>
    where
        Z: IntoParallelIterator<Iter = IndexedPar<Q>, Item = Q::Item>,
        Q: Producer,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        let other = other.into_par_iter();
        let n = self.producer.len().min(other.producer.len());
        let (a, _) = self.producer.split_at(n);
        let (b, _) = other.producer.split_at(n);
        IndexedPar {
            producer: ZipProducer { a, b },
            min_len,
            max_len,
        }
    }

    pub fn enumerate(self) -> IndexedPar<EnumerateProducer<P>> {
        let (min_len, max_len) = (self.min_len, self.max_len);
        IndexedPar {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
            min_len,
            max_len,
        }
    }

    pub fn update<F>(self, f: F) -> IndexedPar<UpdateProducer<P, F>>
    where
        F: Fn(&mut P::Item) + Clone + Send + Sync,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        IndexedPar {
            producer: UpdateProducer {
                base: self.producer,
                f,
            },
            min_len,
            max_len,
        }
    }

    /// Rayon's `map_init`: `init` builds a per-chunk (≈ per-worker)
    /// state the mapper mutably borrows for every item in the chunk.
    pub fn map_init<T, R, INIT, F>(
        self,
        init: INIT,
        f: F,
    ) -> IndexedPar<MapInitProducer<P, INIT, F>>
    where
        INIT: Fn() -> T + Clone + Send + Sync,
        F: Fn(&mut T, P::Item) -> R + Clone + Send + Sync,
        R: Send,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        IndexedPar {
            producer: MapInitProducer {
                base: self.producer,
                init,
                f,
            },
            min_len,
            max_len,
        }
    }

    // ---- length-erasing adaptors (switch to UnindexedPar) ----

    pub fn filter<F>(self, f: F) -> UnindexedPar<P, FilterM<Ident, F>>
    where
        F: Fn(&P::Item) -> bool + Clone + Send + Sync,
    {
        UnindexedPar {
            base: self.producer,
            mapper: FilterM { prev: Ident, f },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> UnindexedPar<P, FilterMapM<Ident, F, R>>
    where
        F: Fn(P::Item) -> Option<R> + Clone + Send + Sync,
        R: Send,
    {
        UnindexedPar {
            base: self.producer,
            mapper: FilterMapM {
                prev: Ident,
                f,
                _r: PhantomData,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Rayon's `flat_map_iter`: the per-item sub-iterators run
    /// sequentially inside their chunk.
    pub fn flat_map_iter<U, F>(self, f: F) -> UnindexedPar<P, FlatMapIterM<Ident, F, U>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(P::Item) -> U + Clone + Send + Sync,
    {
        UnindexedPar {
            base: self.producer,
            mapper: FlatMapIterM {
                prev: Ident,
                f,
                _u: PhantomData,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    // ---- consumers ----

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().for_each(&f)
        });
    }

    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_iter(self)
    }

    pub fn count(self) -> usize {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().count()
        })
        .into_iter()
        .sum()
    }

    /// Rayon's `reduce(identity, op)` — identity-producing closure,
    /// unlike `Iterator::reduce`. `op` must be associative for the
    /// result to be independent of the (deterministic, in-order)
    /// chunk grouping.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), op)
    }

    /// Rayon's `fold(identity, op)`: one accumulator per chunk,
    /// returned (in chunk order) as a new parallel iterator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> IndexedPar<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        let accs: Vec<T> = run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().fold(identity(), &fold_op)
        });
        accs.into_par_iter()
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().min()
        })
        .into_iter()
        .flatten()
        .reduce(|a, b| if b < a { b } else { a })
    }

    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().max()
        })
        .into_iter()
        .flatten()
        .reduce(|a, b| if b >= a { b } else { a })
    }

    pub fn min_by_key<K, F>(self, f: F) -> Option<P::Item>
    where
        K: Ord,
        F: Fn(&P::Item) -> K + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().min_by_key(|x| f(x))
        })
        .into_iter()
        .flatten()
        .reduce(|a, b| if f(&b) < f(&a) { b } else { a })
    }

    pub fn max_by_key<K, F>(self, f: F) -> Option<P::Item>
    where
        K: Ord,
        F: Fn(&P::Item) -> K + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().max_by_key(|x| f(x))
        })
        .into_iter()
        .flatten()
        .reduce(|a, b| if f(&b) >= f(&a) { b } else { a })
    }

    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().all(&f)
        })
        .into_iter()
        .all(|ok| ok)
    }

    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().any(&f)
        })
        .into_iter()
        .any(|ok| ok)
    }

    /// First item (in iterator order) matching the predicate.
    pub fn find_first<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |_, chunk| {
            chunk.into_seq_iter().find(|x| f(x))
        })
        .into_iter()
        .flatten()
        .next()
    }

    /// Deterministic alias of [`IndexedPar::find_first`].
    pub fn find_any<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        self.find_first(f)
    }

    pub fn position_first<F>(self, f: F) -> Option<usize>
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        run_split(self.producer, self.min_len, self.max_len, |off, chunk| {
            chunk.into_seq_iter().position(&f).map(|i| off + i)
        })
        .into_iter()
        .flatten()
        .next()
    }

    /// Deterministic alias of [`IndexedPar::position_first`].
    pub fn position_any<F>(self, f: F) -> Option<usize>
    where
        F: Fn(P::Item) -> bool + Send + Sync,
    {
        self.position_first(f)
    }
}

impl<'a, T, P> IndexedPar<P>
where
    T: 'a,
    P: Producer<Item = &'a T>,
{
    pub fn copied(self) -> IndexedPar<CopiedProducer<P>>
    where
        T: Copy + Send + Sync,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        IndexedPar {
            producer: CopiedProducer {
                base: self.producer,
            },
            min_len,
            max_len,
        }
    }

    pub fn cloned(self) -> IndexedPar<ClonedProducer<P>>
    where
        T: Clone + Send + Sync,
    {
        let (min_len, max_len) = (self.min_len, self.max_len);
        IndexedPar {
            producer: ClonedProducer {
                base: self.producer,
            },
            min_len,
            max_len,
        }
    }
}

impl<P: Producer> ParallelIterator for IndexedPar<P> {
    type Item = P::Item;

    fn drive_append(self, out: &mut Vec<P::Item>) {
        let len = self.producer.len();
        out.reserve(len);
        let base_len = out.len();
        // SAFETY: `reserve` guarantees capacity for `len` more items;
        // each chunk writes its own disjoint `[offset, offset+chunk)`
        // index range exactly once; `set_len` runs only after every
        // chunk completed (the driver blocks on the batch latch).
        let base_ptr = SendPtr(unsafe { out.as_mut_ptr().add(base_len) });
        run_split(
            self.producer,
            self.min_len,
            self.max_len,
            |offset, chunk| {
                // SAFETY: `offset + chunk.len() <= len` (run_split
                // contract), all within the reserved spare capacity.
                let mut ptr = unsafe { base_ptr.get().add(offset) };
                for item in chunk.into_seq_iter() {
                    // SAFETY: this chunk exclusively owns its target
                    // subrange; `ptr` stays within it (one write per
                    // yielded item, chunk length many items).
                    unsafe {
                        ptr.write(item);
                        ptr = ptr.add(1);
                    }
                }
            },
        );
        // SAFETY: every chunk completed (run_split blocks on the batch
        // latch), so all `len` new slots are initialized.
        unsafe { out.set_len(base_len + len) };
    }
}

impl<P: Producer> IndexedParallelIterator for IndexedPar<P> {}

impl<P: Producer> IntoParallelIterator for IndexedPar<P> {
    type Item = P::Item;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

// ---------------------------------------------------------------------------
// UnindexedPar: filtered / flattened pipelines
// ---------------------------------------------------------------------------

/// A per-chunk sequential transform: turns a base chunk's iterator into
/// the pipeline's output iterator. Composed left-to-right as adaptors
/// stack; shared by reference across workers.
pub trait ChunkMap<I: Iterator>: Send + Sync {
    type Out: Iterator;
    fn apply(&self, it: I) -> Self::Out;
}

/// The identity transform (pipeline start).
#[derive(Clone, Copy)]
pub struct Ident;

impl<I: Iterator> ChunkMap<I> for Ident {
    type Out = I;
    fn apply(&self, it: I) -> I {
        it
    }
}

/// `filter` transform.
#[derive(Clone)]
pub struct FilterM<M, F> {
    prev: M,
    f: F,
}

impl<I, M, F> ChunkMap<I> for FilterM<M, F>
where
    I: Iterator,
    M: ChunkMap<I>,
    F: Fn(&<M::Out as Iterator>::Item) -> bool + Clone + Send + Sync,
{
    type Out = std::iter::Filter<M::Out, F>;
    fn apply(&self, it: I) -> Self::Out {
        self.prev.apply(it).filter(self.f.clone())
    }
}

/// `map` transform (after a length-erasing stage).
#[derive(Clone)]
pub struct MapM<M, F, R> {
    prev: M,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<I, M, F, R> ChunkMap<I> for MapM<M, F, R>
where
    I: Iterator,
    M: ChunkMap<I>,
    F: Fn(<M::Out as Iterator>::Item) -> R + Clone + Send + Sync,
{
    type Out = std::iter::Map<M::Out, F>;
    fn apply(&self, it: I) -> Self::Out {
        self.prev.apply(it).map(self.f.clone())
    }
}

/// `filter_map` transform.
#[derive(Clone)]
pub struct FilterMapM<M, F, R> {
    prev: M,
    f: F,
    _r: PhantomData<fn() -> R>,
}

impl<I, M, F, R> ChunkMap<I> for FilterMapM<M, F, R>
where
    I: Iterator,
    M: ChunkMap<I>,
    F: Fn(<M::Out as Iterator>::Item) -> Option<R> + Clone + Send + Sync,
{
    type Out = std::iter::FilterMap<M::Out, F>;
    fn apply(&self, it: I) -> Self::Out {
        self.prev.apply(it).filter_map(self.f.clone())
    }
}

/// `flat_map_iter` transform.
#[derive(Clone)]
pub struct FlatMapIterM<M, F, U> {
    prev: M,
    f: F,
    _u: PhantomData<fn() -> U>,
}

impl<I, M, F, U> ChunkMap<I> for FlatMapIterM<M, F, U>
where
    I: Iterator,
    M: ChunkMap<I>,
    U: IntoIterator,
    F: Fn(<M::Out as Iterator>::Item) -> U + Clone + Send + Sync,
{
    type Out = std::iter::FlatMap<M::Out, U, F>;
    fn apply(&self, it: I) -> Self::Out {
        self.prev.apply(it).flat_map(self.f.clone())
    }
}

/// A parallel pipeline whose output length is unknown (post-`filter` /
/// `flat_map_iter`): the *base* producer still splits into balanced
/// chunks; the composed [`ChunkMap`] runs inside each chunk.
pub struct UnindexedPar<P, M>
where
    P: Producer,
    M: ChunkMap<P::IntoIter>,
{
    base: P,
    mapper: M,
    min_len: usize,
    max_len: usize,
}

/// Item type of an [`UnindexedPar`] pipeline.
type MappedItem<P, M> = <<M as ChunkMap<<P as Producer>::IntoIter>>::Out as Iterator>::Item;

impl<P, M> UnindexedPar<P, M>
where
    P: Producer,
    M: ChunkMap<P::IntoIter>,
    MappedItem<P, M>: Send,
{
    fn drive<R, F>(self, fold: F) -> Vec<R>
    where
        R: Send,
        F: Fn(M::Out) -> R + Sync,
    {
        let mapper = self.mapper;
        run_split(self.base, self.min_len, self.max_len, move |_, chunk| {
            fold(mapper.apply(chunk.into_seq_iter()))
        })
    }

    // ---- adaptors (compose another transform) ----

    pub fn map<R, F>(self, f: F) -> UnindexedPar<P, MapM<M, F, R>>
    where
        F: Fn(MappedItem<P, M>) -> R + Clone + Send + Sync,
        R: Send,
    {
        UnindexedPar {
            base: self.base,
            mapper: MapM {
                prev: self.mapper,
                f,
                _r: PhantomData,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    pub fn filter<F>(self, f: F) -> UnindexedPar<P, FilterM<M, F>>
    where
        F: Fn(&MappedItem<P, M>) -> bool + Clone + Send + Sync,
    {
        UnindexedPar {
            base: self.base,
            mapper: FilterM {
                prev: self.mapper,
                f,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> UnindexedPar<P, FilterMapM<M, F, R>>
    where
        F: Fn(MappedItem<P, M>) -> Option<R> + Clone + Send + Sync,
        R: Send,
    {
        UnindexedPar {
            base: self.base,
            mapper: FilterMapM {
                prev: self.mapper,
                f,
                _r: PhantomData,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    pub fn flat_map_iter<U, F>(self, f: F) -> UnindexedPar<P, FlatMapIterM<M, F, U>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(MappedItem<P, M>) -> U + Clone + Send + Sync,
    {
        UnindexedPar {
            base: self.base,
            mapper: FlatMapIterM {
                prev: self.mapper,
                f,
                _u: PhantomData,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    // ---- consumers ----

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(MappedItem<P, M>) + Send + Sync,
    {
        self.drive(|it| it.for_each(&f));
    }

    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<MappedItem<P, M>>,
    {
        C::from_par_iter(self)
    }

    pub fn count(self) -> usize {
        self.drive(|it| it.count()).into_iter().sum()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> MappedItem<P, M>
    where
        ID: Fn() -> MappedItem<P, M> + Send + Sync,
        OP: Fn(MappedItem<P, M>, MappedItem<P, M>) -> MappedItem<P, M> + Send + Sync,
    {
        self.drive(|it| it.fold(identity(), &op))
            .into_iter()
            .fold(identity(), op)
    }

    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> IndexedPar<VecProducer<T>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, MappedItem<P, M>) -> T + Send + Sync,
    {
        let accs: Vec<T> = self.drive(|it| it.fold(identity(), &fold_op));
        accs.into_par_iter()
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<MappedItem<P, M>> + std::iter::Sum<S>,
    {
        self.drive(|it| it.sum::<S>()).into_iter().sum()
    }

    pub fn min(self) -> Option<MappedItem<P, M>>
    where
        MappedItem<P, M>: Ord,
    {
        self.drive(|it| it.min())
            .into_iter()
            .flatten()
            .reduce(|a, b| if b < a { b } else { a })
    }

    pub fn max(self) -> Option<MappedItem<P, M>>
    where
        MappedItem<P, M>: Ord,
    {
        self.drive(|it| it.max())
            .into_iter()
            .flatten()
            .reduce(|a, b| if b >= a { b } else { a })
    }

    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(MappedItem<P, M>) -> bool + Send + Sync,
    {
        self.drive(|mut it| it.all(&f)).into_iter().all(|ok| ok)
    }

    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(MappedItem<P, M>) -> bool + Send + Sync,
    {
        self.drive(|mut it| it.any(&f)).into_iter().any(|ok| ok)
    }

    /// First item (in sequential order) matching the predicate.
    pub fn find_first<F>(self, f: F) -> Option<MappedItem<P, M>>
    where
        F: Fn(&MappedItem<P, M>) -> bool + Send + Sync,
    {
        self.drive(|it| {
            it.fold(None, |found: Option<MappedItem<P, M>>, x| {
                if found.is_some() {
                    found
                } else if f(&x) {
                    Some(x)
                } else {
                    None
                }
            })
        })
        .into_iter()
        .flatten()
        .next()
    }
}

impl<P, M> ParallelIterator for UnindexedPar<P, M>
where
    P: Producer,
    M: ChunkMap<P::IntoIter>,
    MappedItem<P, M>: Send,
{
    type Item = MappedItem<P, M>;

    fn drive_append(self, out: &mut Vec<Self::Item>) {
        let parts: Vec<Vec<Self::Item>> = self.drive(|it| it.collect());
        for mut part in parts {
            out.append(&mut part);
        }
    }
}

impl<P, M> IntoParallelIterator for UnindexedPar<P, M>
where
    P: Producer,
    M: ChunkMap<P::IntoIter>,
    MappedItem<P, M>: Send,
{
    type Item = MappedItem<P, M>;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}
