//! Parallel slice extensions: `par_chunks`, `par_chunks_mut`,
//! `par_windows`, and the `par_sort_*` family.
//!
//! The chunking methods return indexed parallel iterators over
//! producers that split **at chunk boundaries**, so a driver chunk is
//! always a whole number of sub-slices. The sorts run a fork-join
//! stable merge sort ([`crate::join`] recursion with an out-of-place
//! merge), falling back to `slice::sort_by` below a grain size or on a
//! one-worker pool.

use crate::iter::{IndexedPar, Producer};
use crate::pool;

/// Sub-slices at most this long sort sequentially: below it the merge
/// buffer traffic costs more than the parallelism returns.
const SORT_GRAIN: usize = 8 * 1024;

// ---------------------------------------------------------------------------
// Chunk producers
// ---------------------------------------------------------------------------

/// Producer behind `par_chunks`.
pub struct ChunksProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksProducer {
                slice: l,
                size: self.size,
            },
            ChunksProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Producer behind `par_chunks_exact` (remainder pre-trimmed).
pub struct ChunksExactProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksExactProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::ChunksExact<'a, T>;
    fn len(&self) -> usize {
        self.slice.len() / self.size
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index * self.size);
        (
            ChunksExactProducer {
                slice: l,
                size: self.size,
            },
            ChunksExactProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks_exact(self.size)
    }
}

/// Producer behind `par_windows`.
pub struct WindowsProducer<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for WindowsProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().saturating_sub(self.size - 1)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        // Window `index` starts the right half; the left half keeps the
        // overlap it needs to yield windows `[0, index)`.
        let left_end = (index + self.size - 1).min(self.slice.len());
        (
            WindowsProducer {
                slice: &self.slice[..left_end],
                size: self.size,
            },
            WindowsProducer {
                slice: &self.slice[index..],
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.windows(self.size)
    }
}

/// Producer behind `par_chunks_mut`.
pub struct ChunksMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Producer behind `par_chunks_exact_mut` (remainder pre-trimmed).
pub struct ChunksExactMutProducer<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksExactMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksExactMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len() / self.size
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index * self.size);
        (
            ChunksExactMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksExactMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks_exact_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Extension traits
// ---------------------------------------------------------------------------

/// Shared-slice extension methods.
pub trait ParallelSlice<T: Sync> {
    fn as_parallel_slice(&self) -> &[T];

    fn par_chunks(&self, chunk_size: usize) -> IndexedPar<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        IndexedPar::new(ChunksProducer {
            slice: self.as_parallel_slice(),
            size: chunk_size,
        })
    }

    fn par_chunks_exact(&self, chunk_size: usize) -> IndexedPar<ChunksExactProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        IndexedPar::new(ChunksExactProducer {
            slice: self.as_parallel_slice(),
            size: chunk_size,
        })
    }

    fn par_windows(&self, window_size: usize) -> IndexedPar<WindowsProducer<'_, T>> {
        assert!(window_size > 0, "window_size must be positive");
        IndexedPar::new(WindowsProducer {
            slice: self.as_parallel_slice(),
            size: window_size,
        })
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

/// Mutable-slice extension methods, including the parallel sorts.
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_chunks_mut(&mut self, chunk_size: usize) -> IndexedPar<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        IndexedPar::new(ChunksMutProducer {
            slice: self.as_parallel_slice_mut(),
            size: chunk_size,
        })
    }

    fn par_chunks_exact_mut(
        &mut self,
        chunk_size: usize,
    ) -> IndexedPar<ChunksExactMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        IndexedPar::new(ChunksExactMutProducer {
            slice: self.as_parallel_slice_mut(),
            size: chunk_size,
        })
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &|a, b| a.cmp(b));
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &|a, b| a.cmp(b));
    }

    fn par_sort_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, compare: F) {
        par_merge_sort(self.as_parallel_slice_mut(), &compare);
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, compare: F) {
        par_merge_sort(self.as_parallel_slice_mut(), &compare);
    }

    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_merge_sort(self.as_parallel_slice_mut(), &|a, b| key(a).cmp(&key(b)));
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_merge_sort(self.as_parallel_slice_mut(), &|a, b| key(a).cmp(&key(b)));
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

// ---------------------------------------------------------------------------
// Fork-join stable merge sort
// ---------------------------------------------------------------------------

/// Aborts the process if dropped — armed around the unsafe merge so a
/// panicking comparator cannot leave moved-out elements to be dropped
/// twice during unwinding.
struct MergeAbortGuard;

impl Drop for MergeAbortGuard {
    fn drop(&mut self) {
        eprintln!("pp-rayon: comparator panicked during a parallel merge; aborting");
        std::process::abort();
    }
}

fn par_merge_sort<T: Send, F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(v: &mut [T], cmp: &F) {
    if v.len() <= SORT_GRAIN || pool::current_registry().is_sequential() {
        v.sort_by(cmp);
        return;
    }
    let mid = v.len() / 2;
    let (left, right) = v.split_at_mut(mid);
    pool::join(|| par_merge_sort(left, cmp), || par_merge_sort(right, cmp));
    merge_halves(v, mid, cmp);
}

/// Stable out-of-place merge of `v[..mid]` and `v[mid..]` back into
/// `v`, moving elements by pointer (no `Clone` bound, like the real
/// rayon sorts).
fn merge_halves<T: Send, F: Fn(&T, &T) -> std::cmp::Ordering>(v: &mut [T], mid: usize, cmp: &F) {
    let n = v.len();
    let mut tmp: Vec<T> = Vec::with_capacity(n);
    let guard = MergeAbortGuard;
    // SAFETY: every element of `v` is moved into `tmp` exactly once
    // (two cursors over disjoint halves), then the whole of `tmp` is
    // moved back; `tmp`'s length stays 0 throughout so neither panic
    // nor drop can free an element twice — a comparator panic instead
    // trips the abort guard.
    unsafe {
        let src = v.as_mut_ptr();
        let dst = tmp.as_mut_ptr();
        let (mut i, mut j, mut k) = (0usize, mid, 0usize);
        while i < mid && j < n {
            let take_left = cmp(&*src.add(i), &*src.add(j)) != std::cmp::Ordering::Greater;
            let from = if take_left { &mut i } else { &mut j };
            dst.add(k).write(std::ptr::read(src.add(*from)));
            *from += 1;
            k += 1;
        }
        if i < mid {
            std::ptr::copy_nonoverlapping(src.add(i), dst.add(k), mid - i);
            k += mid - i;
        }
        if j < n {
            std::ptr::copy_nonoverlapping(src.add(j), dst.add(k), n - j);
            k += n - j;
        }
        debug_assert_eq!(k, n);
        std::ptr::copy_nonoverlapping(dst, src, n);
    }
    std::mem::forget(guard);
    // `tmp` drops as an empty vec: elements are back in `v`.
}
