//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate vendors the *subset* of rayon's API the workspace uses,
//! with sequential execution semantics. Every `par_*` entry point is a
//! drop-in signature match for the real rayon (including the
//! rayon-specific `reduce(identity, op)` shape and `Send + Sync`
//! bounds), so the codebase compiles unchanged against either; pointing
//! the workspace `rayon` dependency at crates.io restores real
//! work-stealing parallelism with no source edits.
//!
//! Sequential execution is semantically safe here by design: every
//! parallel algorithm in the workspace is deterministic and
//! sequential-equivalent (the paper's central claim), so the shim
//! changes wall-clock behavior only.

use std::marker::PhantomData;

/// The rayon prelude: parallel-iterator traits and slice extensions.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelExtend, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Run two closures "in parallel" (sequentially here) and return both
/// results — rayon's fork-join primitive.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

/// Number of worker threads in the current pool. The sequential shim
/// always has exactly one.
pub fn current_num_threads() -> usize {
    1
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in the shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]. Thread-count hints are accepted and
/// ignored (the shim runs everything on the calling thread).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _private: (),
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(self, _n: usize) -> Self {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _private: () })
    }
}

/// A "pool" that installs closures by calling them on the current thread.
pub struct ThreadPool {
    _private: (),
}

impl ThreadPool {
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        f()
    }
}

pub mod iter {
    //! Sequential implementations of the parallel-iterator traits.
    //!
    //! [`Par`] wraps an ordinary [`Iterator`]; the adaptor and consumer
    //! methods mirror rayon's names and signatures (notably
    //! `reduce(identity, op)`), delegating to the wrapped iterator.

    /// A "parallel" iterator: a thin wrapper over a sequential iterator
    /// carrying rayon's method surface.
    pub struct Par<I>(pub(crate) I);

    /// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
    pub trait IntoParallelIterator {
        type Item;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// `&c.par_iter()` sugar for collections with a parallel ref iterator.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `&mut c.par_iter_mut()` sugar.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoParallelIterator,
    {
        type Item = <&'data C as IntoParallelIterator>::Item;
        type Iter = <&'data C as IntoParallelIterator>::Iter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_par_iter()
        }
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoParallelIterator,
    {
        type Item = <&'data mut C as IntoParallelIterator>::Item;
        type Iter = <&'data mut C as IntoParallelIterator>::Iter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_par_iter()
        }
    }

    /// The core parallel-iterator trait: rayon's method names with
    /// sequential delegation. Implemented once, for [`Par`].
    pub trait ParallelIterator: Sized {
        type Item;
        type Inner: Iterator<Item = Self::Item>;

        fn into_seq(self) -> Self::Inner;

        fn map<R, F: FnMut(Self::Item) -> R>(self, f: F) -> Par<std::iter::Map<Self::Inner, F>> {
            Par(self.into_seq().map(f))
        }

        fn filter<F: FnMut(&Self::Item) -> bool>(
            self,
            f: F,
        ) -> Par<std::iter::Filter<Self::Inner, F>> {
            Par(self.into_seq().filter(f))
        }

        fn filter_map<R, F: FnMut(Self::Item) -> Option<R>>(
            self,
            f: F,
        ) -> Par<std::iter::FilterMap<Self::Inner, F>> {
            Par(self.into_seq().filter_map(f))
        }

        fn flat_map<U: IntoIterator, F: FnMut(Self::Item) -> U>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<Self::Inner, U, F>> {
            Par(self.into_seq().flat_map(f))
        }

        /// Rayon's `flat_map_iter`: like `flat_map`, but the produced
        /// sub-iterators run sequentially — which is all the shim does
        /// anyway.
        fn flat_map_iter<U: IntoIterator, F: FnMut(Self::Item) -> U>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<Self::Inner, U, F>> {
            Par(self.into_seq().flat_map(f))
        }

        fn flatten(self) -> Par<std::iter::Flatten<Self::Inner>>
        where
            Self::Item: IntoIterator,
        {
            Par(self.into_seq().flatten())
        }

        fn inspect<F: FnMut(&Self::Item)>(self, f: F) -> Par<std::iter::Inspect<Self::Inner, F>> {
            Par(self.into_seq().inspect(f))
        }

        #[allow(clippy::type_complexity)]
        fn update<F: FnMut(&mut Self::Item)>(
            self,
            f: F,
        ) -> Par<std::iter::Map<Self::Inner, impl FnMut(Self::Item) -> Self::Item>> {
            let mut f = f;
            Par(self.into_seq().map(move |mut x| {
                f(&mut x);
                x
            }))
        }

        /// Rayon's `map_init`: like `map`, but the mapper borrows a
        /// per-thread value produced by `init`. The sequential shim has
        /// exactly one "thread", so `init` runs once and every item
        /// reuses that value — which is precisely what makes
        /// scratch-reusing batched solves fast under the shim.
        #[allow(clippy::type_complexity)]
        fn map_init<T, R, INIT, F>(
            self,
            init: INIT,
            map_op: F,
        ) -> Par<std::iter::Map<Self::Inner, impl FnMut(Self::Item) -> R>>
        where
            INIT: Fn() -> T + Sync + Send,
            F: Fn(&mut T, Self::Item) -> R + Sync + Send,
        {
            let mut state = init();
            Par(self.into_seq().map(move |x| map_op(&mut state, x)))
        }

        fn enumerate(self) -> Par<std::iter::Enumerate<Self::Inner>> {
            Par(self.into_seq().enumerate())
        }

        fn zip<Z: IntoParallelIterator>(
            self,
            other: Z,
        ) -> Par<std::iter::Zip<Self::Inner, <Z::Iter as ParallelIterator>::Inner>> {
            Par(self.into_seq().zip(other.into_par_iter().into_seq()))
        }

        fn chain<C: IntoParallelIterator<Item = Self::Item>>(
            self,
            other: C,
        ) -> Par<std::iter::Chain<Self::Inner, <C::Iter as ParallelIterator>::Inner>> {
            Par(self.into_seq().chain(other.into_par_iter().into_seq()))
        }

        fn take(self, n: usize) -> Par<std::iter::Take<Self::Inner>> {
            Par(self.into_seq().take(n))
        }

        fn skip(self, n: usize) -> Par<std::iter::Skip<Self::Inner>> {
            Par(self.into_seq().skip(n))
        }

        fn step_by(self, n: usize) -> Par<std::iter::StepBy<Self::Inner>> {
            Par(self.into_seq().step_by(n))
        }

        fn rev(self) -> Par<std::iter::Rev<Self::Inner>>
        where
            Self::Inner: DoubleEndedIterator,
        {
            Par(self.into_seq().rev())
        }

        fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<Self::Inner>>
        where
            Self: ParallelIterator<Item = &'a T>,
        {
            Par(self.into_seq().copied())
        }

        fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<Self::Inner>>
        where
            Self: ParallelIterator<Item = &'a T>,
        {
            Par(self.into_seq().cloned())
        }

        fn with_min_len(self, _n: usize) -> Self {
            self
        }

        fn with_max_len(self, _n: usize) -> Self {
            self
        }

        fn for_each<F: FnMut(Self::Item)>(self, f: F) {
            self.into_seq().for_each(f)
        }

        fn for_each_with<T, F: FnMut(&mut T, Self::Item)>(self, mut init: T, mut f: F) {
            self.into_seq().for_each(|x| f(&mut init, x))
        }

        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.into_seq().collect()
        }

        fn count(self) -> usize {
            self.into_seq().count()
        }

        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.into_seq().sum()
        }

        fn min(self) -> Option<Self::Item>
        where
            Self::Item: Ord,
        {
            self.into_seq().min()
        }

        fn max(self) -> Option<Self::Item>
        where
            Self::Item: Ord,
        {
            self.into_seq().max()
        }

        fn min_by_key<K: Ord, F: FnMut(&Self::Item) -> K>(self, f: F) -> Option<Self::Item> {
            self.into_seq().min_by_key(f)
        }

        fn max_by_key<K: Ord, F: FnMut(&Self::Item) -> K>(self, f: F) -> Option<Self::Item> {
            self.into_seq().max_by_key(f)
        }

        fn all<F: FnMut(Self::Item) -> bool>(self, f: F) -> bool {
            self.into_seq().all(f)
        }

        fn any<F: FnMut(Self::Item) -> bool>(self, f: F) -> bool {
            self.into_seq().any(f)
        }

        /// Rayon's `find_first`: the first item (in iterator order)
        /// matching the predicate.
        fn find_first<F: FnMut(&Self::Item) -> bool>(self, f: F) -> Option<Self::Item> {
            self.into_seq().find(f)
        }

        fn find_any<F: FnMut(&Self::Item) -> bool>(self, f: F) -> Option<Self::Item> {
            self.into_seq().find(f)
        }

        fn position_first<F: FnMut(Self::Item) -> bool>(self, f: F) -> Option<usize> {
            self.into_seq().position(f)
        }

        fn position_any<F: FnMut(Self::Item) -> bool>(self, f: F) -> Option<usize> {
            self.into_seq().position(f)
        }

        fn partition<A, B, P>(self, predicate: P) -> (A, B)
        where
            A: Default + Extend<Self::Item>,
            B: Default + Extend<Self::Item>,
            P: FnMut(&Self::Item) -> bool,
        {
            let mut predicate = predicate;
            let (mut left, mut right) = (A::default(), B::default());
            for item in self.into_seq() {
                if predicate(&item) {
                    left.extend(std::iter::once(item));
                } else {
                    right.extend(std::iter::once(item));
                }
            }
            (left, right)
        }

        /// Rayon's `reduce(identity, op)` — note the identity-producing
        /// closure, unlike `Iterator::reduce`.
        fn reduce<ID: Fn() -> Self::Item, OP: Fn(Self::Item, Self::Item) -> Self::Item>(
            self,
            identity: ID,
            op: OP,
        ) -> Self::Item {
            self.into_seq().fold(identity(), op)
        }

        /// Rayon's `fold(identity, op)`: per-"thread" accumulators — the
        /// sequential shim produces exactly one.
        fn fold<T, ID: Fn() -> T, F: Fn(T, Self::Item) -> T>(
            self,
            identity: ID,
            fold_op: F,
        ) -> Par<std::iter::Once<T>> {
            Par(std::iter::once(self.into_seq().fold(identity(), fold_op)))
        }
    }

    /// Rayon's indexed refinement; the shim needs no extra methods, but
    /// the trait exists so `use` sites and bounds compile unchanged.
    pub trait IndexedParallelIterator: ParallelIterator {}
    impl<I: Iterator> IndexedParallelIterator for Par<I> {}

    /// Rayon's `ParallelExtend`: extend a collection from a parallel
    /// iterator, reusing the collection's existing capacity — the
    /// allocation-free alternative to `collect` for hot loops.
    pub trait ParallelExtend<T: Send> {
        fn par_extend<I>(&mut self, par_iter: I)
        where
            I: IntoParallelIterator<Item = T>;
    }

    impl<T: Send> ParallelExtend<T> for Vec<T> {
        fn par_extend<I>(&mut self, par_iter: I)
        where
            I: IntoParallelIterator<Item = T>,
        {
            self.extend(par_iter.into_par_iter().into_seq());
        }
    }

    impl<I: Iterator> ParallelIterator for Par<I> {
        type Item = I::Item;
        type Inner = I;
        fn into_seq(self) -> I {
            self.0
        }
    }

    // Every Par is itself IntoParallelIterator (rayon does the same),
    // which is what makes `zip(other_par_iter)` typecheck.
    impl<I: Iterator> IntoParallelIterator for Par<I> {
        type Item = I::Item;
        type Iter = Par<I>;
        fn into_par_iter(self) -> Par<I> {
            self
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = Par<std::vec::IntoIter<T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self.into_iter())
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = Par<std::slice::Iter<'a, T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self.iter())
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = Par<std::slice::Iter<'a, T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self.iter())
        }
    }

    impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
        type Item = &'a mut T;
        type Iter = Par<std::slice::IterMut<'a, T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self.iter_mut())
        }
    }

    impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
        type Item = &'a mut T;
        type Iter = Par<std::slice::IterMut<'a, T>>;
        fn into_par_iter(self) -> Self::Iter {
            Par(self.iter_mut())
        }
    }

    macro_rules! impl_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = Par<std::ops::Range<$t>>;
                fn into_par_iter(self) -> Self::Iter {
                    Par(self)
                }
            }
            impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
                type Item = $t;
                type Iter = Par<std::ops::RangeInclusive<$t>>;
                fn into_par_iter(self) -> Self::Iter {
                    Par(self)
                }
            }
        )*};
    }
    impl_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod slice {
    //! Parallel slice extensions: `par_chunks`, `par_sort_*`, …

    use super::iter::Par;
    use super::PhantomData;

    /// Shared-slice extension methods.
    pub trait ParallelSlice<T: Sync> {
        fn as_parallel_slice(&self) -> &[T];

        fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.as_parallel_slice().chunks(chunk_size))
        }

        fn par_chunks_exact(&self, chunk_size: usize) -> Par<std::slice::ChunksExact<'_, T>> {
            Par(self.as_parallel_slice().chunks_exact(chunk_size))
        }

        fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>> {
            Par(self.as_parallel_slice().windows(window_size))
        }
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn as_parallel_slice(&self) -> &[T] {
            self
        }
    }

    /// Mutable-slice extension methods, including the parallel sorts.
    pub trait ParallelSliceMut<T: Send> {
        fn as_parallel_slice_mut(&mut self) -> &mut [T];

        fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.as_parallel_slice_mut().chunks_mut(chunk_size))
        }

        fn par_chunks_exact_mut(
            &mut self,
            chunk_size: usize,
        ) -> Par<std::slice::ChunksExactMut<'_, T>> {
            Par(self.as_parallel_slice_mut().chunks_exact_mut(chunk_size))
        }

        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.as_parallel_slice_mut().sort();
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_parallel_slice_mut().sort_unstable();
        }

        fn par_sort_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, compare: F) {
            self.as_parallel_slice_mut().sort_by(compare);
        }

        fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, compare: F) {
            self.as_parallel_slice_mut().sort_unstable_by(compare);
        }

        fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
            self.as_parallel_slice_mut().sort_by_key(key);
        }

        fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
            self.as_parallel_slice_mut().sort_unstable_by_key(key);
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }

    // Suppress an unused-import lint path for PhantomData while keeping
    // the module self-contained if methods are trimmed later.
    #[allow(dead_code)]
    fn _phantom_anchor(_: PhantomData<()>) {}
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_filter_collect() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        let odd: Vec<u32> = v.par_iter().copied().filter(|x| x % 4 == 2).collect();
        assert_eq!(odd, vec![2, 6, 10, 14, 18]);
    }

    #[test]
    fn reduce_with_identity() {
        let s = (1u64..=100).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 5050);
    }

    #[test]
    fn zip_chunks_and_mutation() {
        let a = [1u32, 2, 3, 4, 5, 6];
        let mut out = vec![0u32; 6];
        out.par_chunks_mut(2)
            .zip(a.par_chunks(2))
            .for_each(|(o, i)| {
                for (x, y) in o.iter_mut().zip(i) {
                    *x = y * 10;
                }
            });
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn join_and_pool() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!((a, b.as_str()), (2, "xy"));
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 1);
    }

    #[test]
    fn find_first_and_sorts() {
        let v = vec![5i64, 3, 8, 1];
        assert_eq!(v.par_iter().find_first(|&&x| x > 4), Some(&5));
        let mut w = v;
        w.par_sort_unstable_by_key(|&x| x);
        assert_eq!(w, vec![1, 3, 5, 8]);
    }
}
