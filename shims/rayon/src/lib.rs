//! Offline stand-in for [rayon](https://crates.io/crates/rayon) with a
//! **real fork-join thread pool**.
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate vendors the *subset* of rayon's API the workspace uses.
//! Since PR 5 the execution is genuinely parallel, and since PR 8 the
//! scheduler is a **work-stealing** arrangement: per-worker LIFO deques
//! with FIFO steals, a lock-free injector for external submissions, and
//! steal-back as an O(1) own-tail pop (see `pool.rs`'s module docs for
//! the full design). It runs [`join`], [`scope`],
//! [`ThreadPool::install`] and every parallel-iterator driver
//! (`par_iter`, `par_chunks_mut`, `map_init`, `ParallelExtend`, …) on
//! the pool's worker threads. [`ThreadPoolBuilder::num_threads`] is
//! honored and [`current_num_threads`] is truthful, so thread-count
//! knobs (`RunConfig::threads`, `RAYON_NUM_THREADS`) change actual
//! concurrency, not just a label. [`scheduler_counters`] exposes the
//! scheduler's bookkeeping (queue-lock acquisitions, steals, parks,
//! injector pushes, executed jobs) so schedulers can be compared by
//! counters even on single-core CI, where wall-clock scaling is
//! invisible.
//!
//! Every entry point is a drop-in signature match for the real rayon
//! (including the rayon-specific `reduce(identity, op)` shape and the
//! `Send + Sync` closure bounds), so the codebase compiles unchanged
//! against either; pointing the workspace `rayon` dependency at
//! crates.io swaps this shim's deques for rayon's Chase–Lev
//! work-stealing deques with no source edits. Two documented
//! deviations (plus [`scheduler_counters`], a shim-only extension):
//! adaptor
//! closures must additionally be `Clone` (strictly tighter, satisfied
//! by every capture-by-reference closure), and `find_any` /
//! `position_any` are deterministic aliases of their `_first`
//! counterparts.
//!
//! Determinism: every consumer combines per-chunk results **in chunk
//! order**, so `collect`/`par_extend` reproduce the sequential order
//! exactly, ties in `min`/`max` break like `Iterator::min`/`max`, and
//! outputs do not depend on the worker count — the property the
//! workspace's cross-thread-count conformance suite pins down.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod iter;
mod pool;
pub mod slice;

pub use pool::{join, scope, Scope};

/// The rayon prelude: parallel-iterator traits and slice extensions.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelExtend, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads in the current pool: the installed pool's
/// count inside [`ThreadPool::install`] (and on its workers), the
/// global pool's otherwise (`RAYON_NUM_THREADS` or the machine's
/// available parallelism).
pub fn current_num_threads() -> usize {
    pool::current_registry().num_threads()
}

/// A snapshot of one pool's cumulative scheduler bookkeeping (a
/// shim-only extension; the real rayon has no equivalent). Counters
/// only ever increase; diff two snapshots with
/// [`SchedulerCounters::since`] to attribute activity to a region.
///
/// These exist because single-core CI cannot observe scheduler quality
/// as wall-clock scaling: the counters make "fewer lock acquisitions
/// per task, steals actually happen, nobody busy-spins" assertable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerCounters {
    /// Deque mutex acquisitions (owner pushes/pops, steal attempts).
    /// The headline scheduler metric: the old shared-queue design paid
    /// one *global* lock per operation; per-worker deques plus the
    /// lock-free injector shrink both the count and the contention
    /// scope.
    pub queue_locks: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Times a thread blocked on a condvar (worker idle parks + latch
    /// waiter parks).
    pub parks: u64,
    /// Lock-free injector submissions (batches pushed from outside the
    /// pool's workers).
    pub injector_pushes: u64,
    /// Jobs executed to completion.
    pub jobs_executed: u64,
}

impl SchedulerCounters {
    /// Counter deltas since `earlier` (saturating, so snapshots from
    /// different pools never panic — they just produce nonsense, as
    /// any cross-pool diff would).
    pub fn since(&self, earlier: &SchedulerCounters) -> SchedulerCounters {
        SchedulerCounters {
            queue_locks: self.queue_locks.saturating_sub(earlier.queue_locks),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
            injector_pushes: self.injector_pushes.saturating_sub(earlier.injector_pushes),
            jobs_executed: self.jobs_executed.saturating_sub(earlier.jobs_executed),
        }
    }
}

/// Scheduler counters of the *current* pool: the installed pool inside
/// [`ThreadPool::install`] (and on its workers), the global pool
/// otherwise.
pub fn scheduler_counters() -> SchedulerCounters {
    pool::current_registry().counters_snapshot()
}

/// Error building a [`ThreadPool`]: the spawn of a worker thread failed,
/// or the requested thread count exceeds the shim's cap.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads; `0` (or not calling this) means the
    /// default count (`RAYON_NUM_THREADS` / available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Spawn the pool's workers. Fails — with a reachable, tested
    /// [`ThreadPoolBuildError`] — if the count exceeds the shim's cap
    /// or the OS refuses a thread.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            None | Some(0) => current_num_threads(),
            Some(n) => n,
        };
        if threads > pool::MAX_THREADS {
            return Err(ThreadPoolBuildError {
                msg: format!(
                    "{threads} threads requested, shim cap is {}",
                    pool::MAX_THREADS
                ),
            });
        }
        let (registry, handles) =
            pool::Registry::spawn(threads).map_err(|e| ThreadPoolBuildError {
                msg: format!("worker spawn failed: {e}"),
            })?;
        Ok(ThreadPool { registry, handles })
    }
}

/// A dedicated pool of worker threads. [`ThreadPool::install`] makes it
/// the current pool for the duration of a closure: parallel regions
/// inside fan out across this pool's workers (the calling thread helps
/// drain the queue while it waits). Dropping the pool shuts the workers
/// down.
pub struct ThreadPool {
    registry: std::sync::Arc<pool::Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `f` with this pool installed as the thread's current pool.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let _guard = pool::RegistryGuard::enter(std::sync::Arc::clone(&self.registry));
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// This pool's cumulative [`SchedulerCounters`] (no `install`
    /// needed — reads this pool regardless of the thread's current
    /// pool).
    pub fn scheduler_counters(&self) -> SchedulerCounters {
        self.registry.counters_snapshot()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn pool(n: usize) -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn map_filter_collect() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        let odd: Vec<u32> = v.par_iter().copied().filter(|x| x % 4 == 2).collect();
        assert_eq!(odd, vec![2, 6, 10, 14, 18]);
    }

    #[test]
    fn reduce_with_identity() {
        let s = (1u64..=100).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 5050);
    }

    #[test]
    fn zip_chunks_and_mutation() {
        let a = [1u32, 2, 3, 4, 5, 6];
        let mut out = vec![0u32; 6];
        out.par_chunks_mut(2)
            .zip(a.par_chunks(2))
            .for_each(|(o, i)| {
                for (x, y) in o.iter_mut().zip(i) {
                    *x = y * 10;
                }
            });
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn join_and_pool_are_truthful() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!((a, b.as_str()), (2, "xy"));
        let four = pool(4);
        assert_eq!(four.install(crate::current_num_threads), 4);
        assert_eq!(four.current_num_threads(), 4);
        let single = pool(1);
        assert_eq!(single.install(crate::current_num_threads), 1);
    }

    #[test]
    fn work_actually_reaches_worker_threads() {
        // 32 deliberately slow chunks on a 4-worker pool: the caller
        // alone would need ~64ms of sleeping, so workers pick chunks up
        // even on a single hardware core.
        let pool = pool(4);
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..32u32).into_par_iter().with_max_len(1).for_each(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        let distinct = seen.lock().unwrap().len();
        assert!(
            distinct >= 2,
            "expected >1 executing thread, saw {distinct}"
        );
    }

    #[test]
    fn collect_order_is_sequential_under_parallelism() {
        let pool = pool(8);
        let n = 100_000u64;
        let (par, filtered) = pool.install(|| {
            let par: Vec<u64> = (0..n)
                .into_par_iter()
                .map(|x| x.wrapping_mul(2654435761))
                .collect();
            let filtered: Vec<u64> = (0..n)
                .into_par_iter()
                .filter(|x| x % 3 == 0)
                .map(|x| x * 7)
                .collect();
            (par, filtered)
        });
        let seq: Vec<u64> = (0..n).map(|x| x.wrapping_mul(2654435761)).collect();
        let seq_f: Vec<u64> = (0..n).filter(|x| x % 3 == 0).map(|x| x * 7).collect();
        assert_eq!(par, seq);
        assert_eq!(filtered, seq_f);
    }

    #[test]
    fn owned_vec_par_iter_moves_and_drops_correctly() {
        let pool = pool(4);
        let v: Vec<String> = (0..10_000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = pool.install(|| v.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens.len(), 10_000);
        assert_eq!(lens[9999], 4);
        // zip trims the longer side; its surplus elements must drop.
        let a: Vec<String> = (0..1000).map(|i| i.to_string()).collect();
        let b: Vec<String> = (0..600).map(|i| i.to_string()).collect();
        let pairs: Vec<(String, String)> = pool.install(|| a.into_par_iter().zip(b).collect());
        assert_eq!(pairs.len(), 600);
    }

    #[test]
    fn owned_vec_of_zst_yields_every_element() {
        // Pointer-bump iteration would terminate immediately for
        // zero-sized items; the chunk iterator counts instead.
        let pool = pool(4);
        let v = vec![(); 10_000];
        let n = pool.install(|| v.into_par_iter().count());
        assert_eq!(n, 10_000);
    }

    #[test]
    fn par_extend_flat_map_iter_matches_sequential() {
        let pool = pool(4);
        let bounds: Vec<usize> = (0..200).collect();
        let mut out: Vec<usize> = Vec::new();
        pool.install(|| {
            out.par_extend(
                bounds
                    .par_windows(2)
                    .flat_map_iter(|w| (w[0]..w[1] + 2).map(|x| x * 3)),
            );
        });
        let want: Vec<usize> = bounds
            .windows(2)
            .flat_map(|w| (w[0]..w[1] + 2).map(|x| x * 3))
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn map_init_runs_init_per_chunk() {
        let pool = pool(4);
        let inits = AtomicUsize::new(0);
        let out: Vec<u64> = pool.install(|| {
            (0..10_000u64)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        0u64
                    },
                    |state, x| {
                        *state += 1;
                        x + *state.min(&mut 1)
                    },
                )
                .collect()
        });
        assert_eq!(out[0], 1);
        let count = inits.load(Ordering::Relaxed);
        assert!(count >= 1, "init ran {count} times");
    }

    #[test]
    fn min_max_tie_breaking_matches_std() {
        let pool = pool(8);
        let v: Vec<(u32, u32)> = (0..50_000).map(|i| (i % 7, i)).collect();
        pool.install(|| {
            assert_eq!(
                v.par_iter().min_by_key(|p| p.0),
                v.iter().min_by_key(|p| p.0)
            );
            assert_eq!(
                v.par_iter().max_by_key(|p| p.0),
                v.iter().max_by_key(|p| p.0)
            );
        });
    }

    #[test]
    fn find_first_and_sorts() {
        let v = vec![5i64, 3, 8, 1];
        assert_eq!(v.par_iter().find_first(|&&x| x > 4), Some(&5));
        let mut w: Vec<i64> = (0..100_000).map(|i| (i * 7919) % 1000).collect();
        let mut want = w.clone();
        want.sort();
        pool(4).install(|| w.par_sort_unstable_by_key(|&x| x));
        assert_eq!(w, want);
    }

    #[test]
    fn fold_then_reduce() {
        let pool = pool(4);
        let total: u64 = pool.install(|| {
            (0..100_000u64)
                .into_par_iter()
                .fold(|| 0u64, |acc, x| acc + x)
                .sum()
        });
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn enumerate_and_update() {
        let pool = pool(4);
        let v: Vec<(usize, u32)> = pool.install(|| {
            (10u32..20)
                .into_par_iter()
                .update(|x| *x += 1)
                .enumerate()
                .collect()
        });
        assert_eq!(v[0], (0, 11));
        assert_eq!(v[9], (9, 20));
    }

    #[test]
    fn panics_propagate_from_workers() {
        let pool = pool(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..10_000u32).into_par_iter().for_each(|x| {
                    assert!(x != 7777, "boom at {x}");
                });
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must remain usable afterwards.
        let s: u32 = pool.install(|| (0..10u32).into_par_iter().sum());
        assert_eq!(s, 45);
    }

    #[test]
    fn scope_spawns_complete_before_return() {
        let pool = pool(4);
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            crate::scope(|s| {
                for _ in 0..16 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_join_recursion() {
        fn sum_rec(v: &[u64]) -> u64 {
            if v.len() <= 1024 {
                return v.iter().sum();
            }
            let (a, b) = v.split_at(v.len() / 2);
            let (x, y) = crate::join(|| sum_rec(a), || sum_rec(b));
            x + y
        }
        let v: Vec<u64> = (0..200_000).collect();
        let s = pool(4).install(|| sum_rec(&v));
        assert_eq!(s, 200_000u64 * 199_999 / 2);
    }

    #[test]
    fn scheduler_counters_move_under_load() {
        let pool = pool(4);
        let before = pool.scheduler_counters();
        let total: u64 = pool.install(|| {
            (0..100_000u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(2654435761))
                .sum()
        });
        assert_eq!(
            total,
            (0..100_000u64).map(|x| x.wrapping_mul(2654435761)).sum()
        );
        let delta = pool.scheduler_counters().since(&before);
        assert!(
            delta.jobs_executed > 0,
            "chunks must run as jobs: {delta:?}"
        );
        assert!(
            delta.injector_pushes > 0,
            "an external install submits via the injector: {delta:?}"
        );
        // Counters are monotone, and `since` on swapped arguments
        // saturates instead of wrapping.
        assert_eq!(before.since(&pool.scheduler_counters()).jobs_executed, 0);
        // The install closure ran with this pool current, so the free
        // function must have read the same registry.
        let seen_inside = pool.install(crate::scheduler_counters);
        assert!(seen_inside.jobs_executed >= delta.jobs_executed);
    }

    #[test]
    fn build_error_is_reachable() {
        let result = crate::ThreadPoolBuilder::new().num_threads(1 << 20).build();
        let msg = match result {
            Err(e) => e.to_string(),
            Ok(_) => panic!("a 2^20-thread request must fail to build"),
        };
        assert!(msg.contains("cap"), "unexpected message: {msg}");
    }

    #[test]
    fn grain_control_bounds_chunking() {
        // min_len larger than the input: must run as one sequential
        // chunk on the calling thread.
        let caller = std::thread::current().id();
        let pool = pool(4);
        pool.install(|| {
            (0..100u32)
                .into_par_iter()
                .with_min_len(4096)
                .for_each(|_| assert_eq!(std::thread::current().id(), caller));
        });
    }
}
