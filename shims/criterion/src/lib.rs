//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — so `cargo bench` works without crates.io
//! access. Measurement is deliberately simple: each benchmark closure is
//! timed over a handful of batches and the best batch average is
//! printed. Statistical rigor (outlier analysis, HTML reports) returns
//! by pointing the workspace `criterion` dependency at crates.io.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    /// Best observed average time per iteration.
    best: Duration,
    /// Batches to run (each batch runs the closure `iters_per_batch` times).
    batches: usize,
}

impl Bencher {
    fn new(batches: usize) -> Self {
        Self {
            best: Duration::MAX,
            batches,
        }
    }

    /// Time the routine: a warm-up call, then `batches` timed batches;
    /// records the best per-iteration average.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also forces lazy setup
        for _ in 0..self.batches.max(1) {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

fn print_result(group: Option<&str>, id: &str, b: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.best == Duration::MAX {
        println!("{full:<60} (no measurement)");
    } else {
        println!("{full:<60} time: [{:.6} s]", b.best.as_secs_f64());
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 3 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark (the shim keeps this small).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(None, id, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(Some(&self.name), &id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        print_result(Some(&self.name), &id.to_string(), &b);
        self
    }

    pub fn finish(self) {}
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box((0..100u64).sum::<u64>())
            })
        });
        assert!(ran >= 2);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::new("f", 7), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
    }
}
